//! The possible-worlds reference engine.
//!
//! Evaluates UA queries directly over the nonsuccinct representation
//! (Proposition 3.5): every relational operation is applied world by world,
//! `conf` aggregates over the explicit world set, and `repair-key`
//! materialises all repairs.  Exponential, but exact and simple — the ground
//! truth the U-relational engine and the approximation machinery are tested
//! against.
//!
//! The reference engine is an alternative lowering of the same
//! [`LogicalPlan`] the succinct pipeline executes: the query is flattened
//! into the shared operator DAG and each node is materialised as a named
//! relation in every world.  DAG sharing replaces the old string-keyed
//! memoisation — a shared `repair-key` subquery is evaluated once, so its
//! repairs are shared (Example 2.2's self-join).

use crate::error::{EngineError, Result};
use algebra::{Accuracy, ConfTerm, LogicalOp, LogicalPlan, PlanNode, Predicate, ProjItem, Query};
use pdb::{ProbabilisticDatabase, Relation, Schema, Tuple, Value};

/// Result of a reference evaluation: the database state after evaluation
/// (every subquery materialised as a relation in every world) and the name of
/// the relation holding the query result.
#[derive(Clone, Debug)]
pub struct NaiveOutput {
    /// The database after evaluation.
    pub database: ProbabilisticDatabase,
    /// Name of the result relation.
    pub result: String,
}

impl NaiveOutput {
    /// `poss` of the result.
    pub fn possible_tuples(&self) -> Result<Relation> {
        self.database.poss(&self.result).map_err(Into::into)
    }

    /// Exact confidence of a result tuple.
    pub fn confidence(&self, t: &Tuple) -> Result<f64> {
        self.database
            .confidence(&self.result, t)
            .map_err(Into::into)
    }

    /// The exact `conf` relation of the result.
    pub fn conf(&self, prob_attr: &str) -> Result<Relation> {
        self.database
            .conf(&self.result, prob_attr)
            .map_err(Into::into)
    }
}

/// Evaluates a UA query over the possible-worlds representation by lowering
/// it to the shared [`LogicalPlan`] and executing every node world by world.
pub fn evaluate_naive(database: &ProbabilisticDatabase, query: &Query) -> Result<NaiveOutput> {
    let plan = LogicalPlan::lower(query)?;
    evaluate_naive_plan(database, &plan)
}

/// Evaluates an already lowered logical plan on the reference engine.
pub fn evaluate_naive_plan(
    database: &ProbabilisticDatabase,
    plan: &LogicalPlan,
) -> Result<NaiveOutput> {
    let mut ctx = NaiveContext {
        database: database.clone(),
        counter: 0,
    };
    let mut names: Vec<String> = Vec::with_capacity(plan.len());
    for node in plan.nodes() {
        let inputs: Vec<&str> = node.inputs.iter().map(|&i| names[i].as_str()).collect();
        let name = ctx.eval_node(node, &inputs)?;
        names.push(name);
    }
    Ok(NaiveOutput {
        database: ctx.database,
        result: names[plan.root()].clone(),
    })
}

struct NaiveContext {
    database: ProbabilisticDatabase,
    counter: usize,
}

impl NaiveContext {
    fn fresh_name(&mut self) -> String {
        self.counter += 1;
        format!("__q{}", self.counter)
    }

    fn is_complete(&self, name: &str) -> bool {
        self.database.is_complete(name)
    }

    fn eval_node(&mut self, node: &PlanNode, inputs: &[&str]) -> Result<String> {
        match &node.op {
            LogicalOp::Scan { relation } => {
                // Validate existence.
                self.database.schema_of(relation)?;
                Ok(relation.clone())
            }
            LogicalOp::Select { predicate } => {
                let predicate = predicate.clone();
                self.materialise(inputs[0], move |rel: &Relation| {
                    rel.try_select(|t| {
                        predicate
                            .eval(rel.schema(), t)
                            .map_err(|e| pdb::PdbError::Invariant(e.to_string()))
                    })
                    .map_err(EngineError::Pdb)
                })
            }
            LogicalOp::Project { items } => {
                let items = items.clone();
                self.materialise(inputs[0], move |rel: &Relation| {
                    project_relation(rel, &items)
                })
            }
            LogicalOp::Extend { items } => {
                let items = items.clone();
                self.materialise(inputs[0], move |rel: &Relation| {
                    extend_relation(rel, &items)
                })
            }
            LogicalOp::Rename { from, to } => {
                let (from, to) = (from.clone(), to.clone());
                self.materialise(inputs[0], move |rel: &Relation| {
                    rel.rename_attr(&from, &to).map_err(EngineError::Pdb)
                })
            }
            LogicalOp::Product => self.binary(inputs[0], inputs[1], |l, r| {
                l.product(r, "rhs").map_err(EngineError::Pdb)
            }),
            LogicalOp::NaturalJoin => self.binary(inputs[0], inputs[1], |l, r| {
                l.natural_join(r).map_err(EngineError::Pdb)
            }),
            LogicalOp::Union => self.binary(inputs[0], inputs[1], |l, r| {
                l.union(r).map_err(EngineError::Pdb)
            }),
            LogicalOp::Difference { .. } => self.binary(inputs[0], inputs[1], |l, r| {
                l.difference(r).map_err(EngineError::Pdb)
            }),
            LogicalOp::Conf { prob_attr } => {
                // The reference engine computes confidence exactly whether
                // the node is annotated exact or (ε, δ)-approximate.
                debug_assert!(matches!(
                    node.accuracy,
                    Accuracy::Exact | Accuracy::Fpras { .. }
                ));
                let conf = self.database.conf(inputs[0], prob_attr)?;
                let name = self.fresh_name();
                self.database.add_complete_relation(name.clone(), conf);
                Ok(name)
            }
            LogicalOp::RepairKey { key, weight } => {
                let name = self.fresh_name();
                let key_refs: Vec<&str> = key.iter().map(String::as_str).collect();
                self.database
                    .repair_key(inputs[0], &key_refs, weight, name.clone())?;
                Ok(name)
            }
            LogicalOp::Poss => {
                let poss = self.database.poss(inputs[0])?;
                let name = self.fresh_name();
                self.database.add_complete_relation(name.clone(), poss);
                Ok(name)
            }
            LogicalOp::Cert => {
                let cert = self.database.cert(inputs[0])?;
                let name = self.fresh_name();
                self.database.add_complete_relation(name.clone(), cert);
                Ok(name)
            }
            LogicalOp::ApproxSelect { terms, predicate } => {
                let rel = self.approx_select_exact(inputs[0], terms, predicate)?;
                let name = self.fresh_name();
                self.database.add_complete_relation(name.clone(), rel);
                Ok(name)
            }
        }
    }

    fn materialise<F>(&mut self, input: &str, op: F) -> Result<String>
    where
        F: Fn(&Relation) -> Result<Relation>,
    {
        // `map_worlds` needs a pdb-level closure; errors are smuggled through
        // an Option captured outside because the pdb API uses its own error
        // type.
        let complete = self.is_complete(input);
        let name = self.fresh_name();
        let input = input.to_owned();
        let mut failure: Option<EngineError> = None;
        self.database
            .map_worlds(name.clone(), complete, |world| {
                let rel = world.relation(&input)?;
                match op(rel) {
                    Ok(r) => Ok(r),
                    Err(e) => {
                        failure = Some(e.clone());
                        Err(pdb::PdbError::Invariant(e.to_string()))
                    }
                }
            })
            .map_err(|e| failure.take().unwrap_or(EngineError::Pdb(e)))?;
        Ok(name)
    }

    fn binary<F>(&mut self, left: &str, right: &str, op: F) -> Result<String>
    where
        F: Fn(&Relation, &Relation) -> Result<Relation>,
    {
        let complete = self.is_complete(left) && self.is_complete(right);
        let name = self.fresh_name();
        let (left, right) = (left.to_owned(), right.to_owned());
        let mut failure: Option<EngineError> = None;
        self.database
            .map_worlds(name.clone(), complete, |world| {
                let l = world.relation(&left)?;
                let r = world.relation(&right)?;
                match op(l, r) {
                    Ok(rel) => Ok(rel),
                    Err(e) => {
                        failure = Some(e.clone());
                        Err(pdb::PdbError::Invariant(e.to_string()))
                    }
                }
            })
            .map_err(|e| failure.take().unwrap_or(EngineError::Pdb(e)))?;
        Ok(name)
    }

    /// Exact semantics of `σ̂`: the confidences in the condition are computed
    /// from the explicit world set, so no approximation error is introduced.
    fn approx_select_exact(
        &self,
        input: &str,
        terms: &[ConfTerm],
        predicate: &Predicate,
    ) -> Result<Relation> {
        let input_schema = self.database.schema_of(input)?;
        algebra::check_conf_terms(terms, &input_schema)?;

        // Candidate tuples: natural join of poss(π_{A⃗_i}(input)).
        let mut out_attrs: Vec<String> = Vec::new();
        for term in terms {
            for a in &term.attrs {
                if !out_attrs.contains(a) {
                    out_attrs.push(a.clone());
                }
            }
        }
        let mut candidates = Relation::new(Schema::empty(), [Tuple::empty()])?;
        let mut projections: Vec<Relation> = Vec::with_capacity(terms.len());
        for term in terms {
            let attrs: Vec<&str> = term.attrs.iter().map(String::as_str).collect();
            let poss = self.database.poss(input)?;
            let proj = poss.project(&attrs)?;
            candidates = candidates.natural_join(&proj)?;
            projections.push(proj);
        }
        let out_attrs_refs: Vec<&str> = out_attrs.iter().map(String::as_str).collect();
        let candidates = candidates.project(&out_attrs_refs)?;
        let out_schema = candidates.schema().clone();

        // Confidence of t.A⃗_i ∈ π_{A⃗_i}(input): the total weight of the
        // worlds in which some input tuple projects onto the key.
        let placeholder_schema = Schema::new(terms.iter().map(|t| t.name.clone()))?;
        let mut out = Relation::empty(out_schema);
        for candidate in candidates.iter() {
            let mut probs = Vec::with_capacity(terms.len());
            for term in terms {
                let attrs: Vec<&str> = term.attrs.iter().map(String::as_str).collect();
                let key_idx = candidates.schema().indices_of(&attrs)?;
                let key = candidate.project(&key_idx);
                let mut p = 0.0;
                for world in self.database.worlds() {
                    let rel = world.relation(input)?;
                    let projected = rel.project(&attrs)?;
                    if projected.contains(&key) {
                        p += world.probability();
                    }
                }
                probs.push(Value::float(p));
            }
            let keep = predicate.eval(&placeholder_schema, &Tuple::new(probs))?;
            if keep {
                out.insert(candidate.clone())?;
            }
        }
        Ok(out)
    }
}

fn project_relation(rel: &Relation, items: &[ProjItem]) -> Result<Relation> {
    let schema = Schema::new(items.iter().map(|i| i.name.clone()))?;
    let mut out = Relation::empty(schema);
    for t in rel.iter() {
        let mut values = Vec::with_capacity(items.len());
        for item in items {
            values.push(item.expr.eval(rel.schema(), t)?);
        }
        out.insert(Tuple::new(values))?;
    }
    Ok(out)
}

fn extend_relation(rel: &Relation, items: &[ProjItem]) -> Result<Relation> {
    let mut names: Vec<String> = rel.schema().attrs().to_vec();
    names.extend(items.iter().map(|i| i.name.clone()));
    let schema = Schema::new(names)?;
    let mut out = Relation::empty(schema);
    for t in rel.iter() {
        let mut values: Vec<Value> = t.clone().into_values();
        for item in items {
            values.push(item.expr.eval(rel.schema(), t)?);
        }
        out.insert(Tuple::new(values))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::{parse_query, Expr};
    use pdb::{relation, schema, tuple};

    /// The complete database of Example 2.2.
    fn coin_db() -> ProbabilisticDatabase {
        ProbabilisticDatabase::from_complete_relations([
            (
                "Coins",
                relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]],
            ),
            (
                "Faces",
                relation![schema!["CoinType", "Face", "FProb"];
                    ["fair", "H", 0.5], ["fair", "T", 0.5], ["2headed", "H", 1.0]],
            ),
            ("Tosses", relation![schema!["Toss"]; [1], [2]]),
        ])
        .unwrap()
    }

    /// The queries of Example 2.2, up to the conditional-probability table U.
    fn example_2_2_u() -> Query {
        parse_query(
            "project[CoinType, P1 / P2 as P](\
               join(rename[P -> P1](conf(join(\
                      project[CoinType](repairkey[ @ Count](Coins)), \
                      project[CoinType](select[Toss = 1 and Face = 'H'](\
                        project[CoinType, Toss, Face](repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)))))))), \
                    rename[P -> P2](conf(project[](join(\
                      project[CoinType](repairkey[ @ Count](Coins)), \
                      project[CoinType](select[Toss = 1 and Face = 'H'](\
                        project[CoinType, Toss, Face](repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)))))))))))",
        )
        .unwrap()
    }

    #[test]
    fn repair_key_and_projection_reproduce_r() {
        let db = coin_db();
        let q = parse_query("project[CoinType](repairkey[ @ Count](Coins))").unwrap();
        let out = evaluate_naive(&db, &q).unwrap();
        assert_eq!(out.database.num_worlds(), 2);
        assert!((out.confidence(&tuple!["fair"]).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((out.confidence(&tuple!["2headed"]).unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn example_2_2_posterior_probabilities() {
        // The famous posterior: Pr[coin is fair | first toss H] — the query T
        // of the paper joins on both tosses; here the parsed query U uses the
        // evidence of toss 1 only on both sides of the division, checking the
        // whole pipeline end to end.
        let db = coin_db();
        let q = example_2_2_u();
        let out = evaluate_naive(&db, &q).unwrap();
        let result = out.possible_tuples().unwrap();
        // Pr[toss1 = H ∧ fair] = 2/3 · 1/2 = 1/3; Pr[toss1 = H] = 2/3.
        // Posterior for fair = 1/2; for 2headed = (1/3)/(2/3) = 1/2.
        assert!(result.contains(&tuple!["fair", 0.5]));
        assert!(result.contains(&tuple!["2headed", 0.5]));
    }

    #[test]
    fn example_2_2_full_posterior_after_two_heads() {
        // The paper's relation T (evidence: both tosses H) yields posteriors
        // 1/3 (fair) and 2/3 (2headed).
        let db = coin_db();
        let s = "project[CoinType, Toss, Face](repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)))";
        let r = "project[CoinType](repairkey[ @ Count](Coins))";
        let t = format!(
            "join(join({r}, project[CoinType](select[Toss = 1 and Face = 'H']({s}))), \
                  project[CoinType](select[Toss = 2 and Face = 'H']({s})))"
        );
        let u = format!(
            "project[CoinType, P1 / P2 as P](join(rename[P -> P1](conf({t})), rename[P -> P2](conf(project[]({t})))))"
        );
        let q = parse_query(&u).unwrap();
        let out = evaluate_naive(&db, &q).unwrap();
        let result = out.possible_tuples().unwrap();
        let third = 1.0 / 3.0;
        let two_thirds = 2.0 / 3.0;
        let has = |coin: &str, p: f64| {
            result
                .iter()
                .any(|t| t[0] == Value::str(coin) && (t[1].as_f64().unwrap() - p).abs() < 1e-9)
        };
        assert!(has("fair", third), "missing fair posterior: {result}");
        assert!(
            has("2headed", two_thirds),
            "missing 2headed posterior: {result}"
        );
    }

    #[test]
    fn shared_subqueries_share_their_repairs() {
        // Joining a repair-key result with itself must not create independent
        // repairs: the join of R with itself has the same world count as R.
        // The plan DAG guarantees this by construction — the shared subquery
        // is one node.
        let db = coin_db();
        let q = parse_query(
            "join(project[CoinType](repairkey[ @ Count](Coins)), project[CoinType](repairkey[ @ Count](Coins)))",
        )
        .unwrap();
        let plan = LogicalPlan::lower(&q).unwrap();
        assert_eq!(plan.len(), 4, "shared subquery must lower to one node");
        let out = evaluate_naive(&db, &q).unwrap();
        assert_eq!(out.database.num_worlds(), 2);
        assert!((out.confidence(&tuple!["fair"]).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn approx_select_exact_reference_semantics() {
        let db = coin_db();
        let q = Query::table("Coins")
            .repair_key(&[], "Count")
            .project(&["CoinType"])
            .approx_select(
                vec![ConfTerm::new("P1", ["CoinType"])],
                Predicate::ge(Expr::attr("P1"), Expr::konst(0.5)),
                0.01,
                0.05,
            );
        let out = evaluate_naive(&db, &q).unwrap();
        let result = out.possible_tuples().unwrap();
        assert!(result.contains(&tuple!["fair"]));
        assert!(!result.contains(&tuple!["2headed"]));
        // The σ̂ result is complete by definition (it is a conf-derived
        // relation).
        assert_eq!(out.database.cert(&out.result).unwrap().len(), result.len());
    }

    #[test]
    fn poss_cert_and_difference() {
        let db = coin_db();
        let q = parse_query(
            "diffc(poss(project[CoinType](repairkey[ @ Count](Coins))), cert(project[CoinType](repairkey[ @ Count](Coins))))",
        )
        .unwrap();
        let out = evaluate_naive(&db, &q).unwrap();
        let result = out.possible_tuples().unwrap();
        // Nothing is certain, so the difference is all possible coin types.
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn errors_are_propagated_not_panicked() {
        let db = coin_db();
        // Unknown base relation.
        assert!(evaluate_naive(&db, &parse_query("Nope").unwrap()).is_err());
        // Type error inside a projection expression.
        let q = parse_query("project[CoinType + 1 as X](Coins)").unwrap();
        assert!(evaluate_naive(&db, &q).is_err());
        // repair-key over an uncertain relation.
        let q = parse_query("repairkey[ @ Count](repairkey[ @ Count](Coins))").unwrap();
        assert!(evaluate_naive(&db, &q).is_err());
    }
}
