//! Data provenance for positive relational algebra (Section 6).
//!
//! The paper defines `(t, Q) ≺ (r, R)` as the transitive closure of the
//! per-operator rules: intuitively, it holds if there is a database in which
//! changing the membership of `r` in `R` changes the membership of `t` in the
//! result of `Q`.  Lemma 6.4 bounds the error of a result tuple by the sum of
//! the errors of the `σ̂`-output tuples in its provenance, and Example 6.5
//! shows that the provenance of a projection output can be the *entire*
//! input (error `≤ µ·n`).
//!
//! The functions here compute provenance sets over materialised relations;
//! the evaluator itself uses the cheaper aggregated error propagation, and
//! the benchmark harness uses this module to reproduce Example 6.5 and to
//! cross-check the aggregated bounds.

use crate::error::Result;
use algebra::{Predicate, ProjItem, Query};
use pdb::{Relation, Schema, Tuple};
use std::collections::BTreeSet;

/// The provenance of one output tuple: the set of input tuples (per base
/// relation name) whose membership can influence it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Provenance {
    entries: BTreeSet<(String, Tuple)>,
}

impl Provenance {
    /// Creates an empty provenance set.
    pub fn new() -> Self {
        Provenance::default()
    }

    /// Adds a dependency on `tuple` of base relation `relation`.
    pub fn add(&mut self, relation: impl Into<String>, tuple: Tuple) {
        self.entries.insert((relation.into(), tuple));
    }

    /// Merges another provenance set into this one.
    pub fn extend(&mut self, other: &Provenance) {
        self.entries.extend(other.entries.iter().cloned());
    }

    /// Number of `(relation, tuple)` dependencies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the provenance is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the dependencies.
    pub fn iter(&self) -> impl Iterator<Item = &(String, Tuple)> {
        self.entries.iter()
    }

    /// True if the provenance mentions the given tuple of the given relation.
    pub fn depends_on(&self, relation: &str, tuple: &Tuple) -> bool {
        self.entries.contains(&(relation.to_owned(), tuple.clone()))
    }

    /// The error bound of Lemma 6.4(1): the sum of the supplied per-input
    /// errors over the provenance set, capped at 1.
    pub fn error_bound(&self, mut error_of: impl FnMut(&str, &Tuple) -> f64) -> f64 {
        self.entries
            .iter()
            .map(|(r, t)| error_of(r, t))
            .sum::<f64>()
            .min(1.0)
    }
}

/// A relation whose tuples carry provenance annotations.
#[derive(Clone, Debug)]
pub struct AnnotatedRelation {
    /// The relation's schema.
    pub schema: Schema,
    /// Tuples with their provenance.
    pub tuples: Vec<(Tuple, Provenance)>,
}

impl AnnotatedRelation {
    /// Wraps a base relation: each tuple depends on itself.
    pub fn from_base(name: &str, relation: &Relation) -> AnnotatedRelation {
        let tuples = relation
            .iter()
            .map(|t| {
                let mut p = Provenance::new();
                p.add(name, t.clone());
                (t.clone(), p)
            })
            .collect();
        AnnotatedRelation {
            schema: relation.schema().clone(),
            tuples,
        }
    }

    /// Looks up the provenance of a tuple (the union over duplicates).
    pub fn provenance_of(&self, tuple: &Tuple) -> Provenance {
        let mut p = Provenance::new();
        for (t, prov) in &self.tuples {
            if t == tuple {
                p.extend(prov);
            }
        }
        p
    }

    fn push(&mut self, tuple: Tuple, provenance: Provenance) {
        // Set semantics with provenance union.
        if let Some(entry) = self.tuples.iter_mut().find(|(t, _)| *t == tuple) {
            entry.1.extend(&provenance);
        } else {
            self.tuples.push((tuple, provenance));
        }
    }
}

/// Evaluates a positive relational algebra query (σ, π, extend, ρ, ×, ⋈, ∪)
/// over complete annotated relations, tracking provenance per the ≺ rules.
///
/// `conf`, `repair-key`, `poss`, `cert` and `σ̂` are rejected: provenance in
/// the paper is defined for the relational core, and approximate selections
/// extend it with the rule `(t, σ̂(Q)) ≺ (t, Q)` which the evaluator handles
/// via its aggregated error bounds.
pub fn annotate(
    query: &Query,
    base: &dyn Fn(&str) -> Option<AnnotatedRelation>,
) -> Result<AnnotatedRelation> {
    use crate::error::EngineError;
    match query {
        Query::Table(name) => base(name).ok_or_else(|| {
            EngineError::Algebra(algebra::AlgebraError::UnknownRelation(name.clone()))
        }),
        Query::Select { input, predicate } => {
            let input = annotate(input, base)?;
            select(&input, predicate)
        }
        Query::Project { input, items } => {
            let input = annotate(input, base)?;
            project(&input, items)
        }
        Query::Extend { input, items } => {
            let input = annotate(input, base)?;
            extend(&input, items)
        }
        Query::Rename { input, from, to } => {
            let input = annotate(input, base)?;
            Ok(AnnotatedRelation {
                schema: input.schema.rename(from, to).map_err(EngineError::Pdb)?,
                tuples: input.tuples.clone(),
            })
        }
        Query::Product { left, right } => {
            let left = annotate(left, base)?;
            let right = annotate(right, base)?;
            product(&left, &right)
        }
        Query::NaturalJoin { left, right } => {
            let left = annotate(left, base)?;
            let right = annotate(right, base)?;
            natural_join(&left, &right)
        }
        Query::Union { left, right } => {
            let left = annotate(left, base)?;
            let right = annotate(right, base)?;
            let mut out = AnnotatedRelation {
                schema: left.schema.clone(),
                tuples: Vec::new(),
            };
            for (t, p) in left.tuples.iter().chain(right.tuples.iter()) {
                out.push(t.clone(), p.clone());
            }
            Ok(out)
        }
        other => Err(EngineError::Unsupported(format!(
            "provenance annotation only covers positive relational algebra, not `{other}`"
        ))),
    }
}

fn select(input: &AnnotatedRelation, predicate: &Predicate) -> Result<AnnotatedRelation> {
    let mut out = AnnotatedRelation {
        schema: input.schema.clone(),
        tuples: Vec::new(),
    };
    for (t, p) in &input.tuples {
        if predicate.eval(&input.schema, t)? {
            out.push(t.clone(), p.clone());
        }
    }
    Ok(out)
}

fn project(input: &AnnotatedRelation, items: &[ProjItem]) -> Result<AnnotatedRelation> {
    let schema = Schema::new(items.iter().map(|i| i.name.clone()))
        .map_err(crate::error::EngineError::Pdb)?;
    let mut out = AnnotatedRelation {
        schema,
        tuples: Vec::new(),
    };
    for (t, p) in &input.tuples {
        let mut values = Vec::with_capacity(items.len());
        for item in items {
            values.push(item.expr.eval(&input.schema, t)?);
        }
        out.push(Tuple::new(values), p.clone());
    }
    Ok(out)
}

fn extend(input: &AnnotatedRelation, items: &[ProjItem]) -> Result<AnnotatedRelation> {
    let mut names: Vec<String> = input.schema.attrs().to_vec();
    names.extend(items.iter().map(|i| i.name.clone()));
    let schema = Schema::new(names).map_err(crate::error::EngineError::Pdb)?;
    let mut out = AnnotatedRelation {
        schema,
        tuples: Vec::new(),
    };
    for (t, p) in &input.tuples {
        let mut values: Vec<pdb::Value> = t.clone().into_values();
        for item in items {
            values.push(item.expr.eval(&input.schema, t)?);
        }
        out.push(Tuple::new(values), p.clone());
    }
    Ok(out)
}

fn product(left: &AnnotatedRelation, right: &AnnotatedRelation) -> Result<AnnotatedRelation> {
    let schema = left
        .schema
        .concat(&right.schema, "rhs")
        .map_err(crate::error::EngineError::Pdb)?;
    let mut out = AnnotatedRelation {
        schema,
        tuples: Vec::new(),
    };
    for (lt, lp) in &left.tuples {
        for (rt, rp) in &right.tuples {
            let mut p = lp.clone();
            p.extend(rp);
            out.push(lt.concat(rt), p);
        }
    }
    Ok(out)
}

fn natural_join(left: &AnnotatedRelation, right: &AnnotatedRelation) -> Result<AnnotatedRelation> {
    use crate::error::EngineError;
    let shared: Vec<String> = left
        .schema
        .attrs()
        .iter()
        .filter(|a| right.schema.contains(a))
        .cloned()
        .collect();
    let left_idx = left.schema.indices_of(&shared).map_err(EngineError::Pdb)?;
    let right_idx = right.schema.indices_of(&shared).map_err(EngineError::Pdb)?;
    let right_rest: Vec<String> = right.schema.minus(&shared);
    let right_rest_idx = right
        .schema
        .indices_of(&right_rest)
        .map_err(EngineError::Pdb)?;
    let mut names: Vec<String> = left.schema.attrs().to_vec();
    names.extend(right_rest);
    let schema = Schema::new(names).map_err(EngineError::Pdb)?;

    let mut out = AnnotatedRelation {
        schema,
        tuples: Vec::new(),
    };
    for (lt, lp) in &left.tuples {
        let lkey = lt.project(&left_idx);
        for (rt, rp) in &right.tuples {
            if rt.project(&right_idx) != lkey {
                continue;
            }
            let mut p = lp.clone();
            p.extend(rp);
            out.push(lt.concat(&rt.project(&right_rest_idx)), p);
        }
    }
    Ok(out)
}

/// The bound of Example 6.5: if every one of `n` input tuples is
/// independently wrong with probability at most `mu`, a projection output
/// tuple that depends on all of them is wrong with probability at most
/// `1 − (1 − mu)^n ≤ mu·n`.
pub fn example_6_5_bound(mu: f64, n: usize) -> (f64, f64) {
    let exact = 1.0 - (1.0 - mu).powi(n as i32);
    let linear = (mu * n as f64).min(1.0);
    (exact, linear)
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::{Expr, Query};
    use pdb::{relation, schema, tuple};

    fn base() -> impl Fn(&str) -> Option<AnnotatedRelation> {
        |name: &str| match name {
            "R" => Some(AnnotatedRelation::from_base(
                "R",
                &relation![schema!["A", "B"]; [1, 10], [1, 20], [2, 30]],
            )),
            "S" => Some(AnnotatedRelation::from_base(
                "S",
                &relation![schema!["B", "C"]; [10, 100], [30, 300]],
            )),
            _ => None,
        }
    }

    #[test]
    fn base_tuples_depend_on_themselves() {
        let r = base()("R").unwrap();
        let p = r.provenance_of(&tuple![1, 10]);
        assert_eq!(p.len(), 1);
        assert!(p.depends_on("R", &tuple![1, 10]));
        assert!(!p.depends_on("R", &tuple![2, 30]));
    }

    #[test]
    fn projection_unions_provenance_of_collapsed_tuples() {
        // π_A(R): the output tuple (1) depends on both (1,10) and (1,20) —
        // the situation of Example 6.5.
        let q = Query::table("R").project(&["A"]);
        let out = annotate(&q, &base()).unwrap();
        let p = out.provenance_of(&tuple![1]);
        assert_eq!(p.len(), 2);
        assert!(p.depends_on("R", &tuple![1, 10]));
        assert!(p.depends_on("R", &tuple![1, 20]));
        let p2 = out.provenance_of(&tuple![2]);
        assert_eq!(p2.len(), 1);
    }

    #[test]
    fn join_provenance_combines_both_sides() {
        let q = Query::table("R").natural_join(Query::table("S"));
        let out = annotate(&q, &base()).unwrap();
        let t = tuple![1, 10, 100];
        let p = out.provenance_of(&t);
        assert_eq!(p.len(), 2);
        assert!(p.depends_on("R", &tuple![1, 10]));
        assert!(p.depends_on("S", &tuple![10, 100]));
    }

    #[test]
    fn selection_and_extend_preserve_provenance() {
        let q = Query::table("R")
            .select(Predicate::eq(Expr::attr("A"), Expr::konst(1)))
            .extend(vec![ProjItem::computed(
                Expr::attr("B") * Expr::konst(2.0),
                "B2",
            )]);
        let out = annotate(&q, &base()).unwrap();
        assert_eq!(out.tuples.len(), 2);
        let p = out.provenance_of(&tuple![1, 10, 20.0]);
        assert!(p.depends_on("R", &tuple![1, 10]));
    }

    #[test]
    fn error_bound_sums_over_provenance() {
        let q = Query::table("R").project(&["A"]);
        let out = annotate(&q, &base()).unwrap();
        let p = out.provenance_of(&tuple![1]);
        let bound = p.error_bound(|_, _| 0.01);
        assert!((bound - 0.02).abs() < 1e-12);
        // Caps at 1.
        let bound = p.error_bound(|_, _| 0.9);
        assert_eq!(bound, 1.0);
    }

    #[test]
    fn unsupported_operators_are_rejected() {
        let q = Query::table("R").conf("P");
        assert!(annotate(&q, &base()).is_err());
        let q = Query::table("Missing");
        assert!(annotate(&q, &base()).is_err());
    }

    #[test]
    fn example_6_5_bound_shapes() {
        let (exact, linear) = example_6_5_bound(0.01, 10);
        assert!(exact <= linear);
        assert!(exact > 0.09 && linear >= 0.0999);
        let (exact, linear) = example_6_5_bound(0.5, 10);
        assert_eq!(linear, 1.0);
        assert!(exact < 1.0);
    }
}
