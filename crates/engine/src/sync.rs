//! Ranked lock wrappers: the engine's machine-checked lock-ordering
//! discipline.
//!
//! Every lock in the engine carries a [`LockRank`], and a thread may only
//! acquire a lock whose rank is **strictly greater** than every rank it
//! already holds.  Because ranks totally order the lock graph, any
//! execution that respects them is deadlock-free by construction; the
//! prose invariant from the serving module ("lock order is state →
//! prepared → plans → pool, nested once in `prepare`") becomes a runtime
//! check instead of a review item.
//!
//! The held-rank stack itself is thread-local and process-wide, shared
//! with the vendored worker pool (`rayon::lockcheck`), so engine locks and
//! pool-internal locks are checked against each other on the same thread —
//! a submitter that helps drain pool deques while holding the snapshot
//! pool lock is still covered.  This module is the workspace's **single
//! source of truth for rank values**; `rayon::lockcheck` mirrors the pool
//! ranks as numeric constants and a unit test pins the two in sync.
//!
//! # Cost model
//!
//! Checking is compiled in when [`CHECKED`] is true: debug builds always,
//! release builds only under `--features lockcheck`.  Unchecked builds get
//! passthrough wrappers — a plain `std::sync` lock plus an inlined empty
//! call, nothing else.  Compile-time guard tests pin both configurations.
//!
//! # Violation and poison policy
//!
//! A rank violation **panics**, naming both lock sites (the vendored
//! pool's internal wrappers abort instead — see `rayon::lockcheck` for why
//! its no-unwind window cannot tolerate a panic).  Lock poisoning
//! **aborts the process** in all builds: a poisoned engine lock means a
//! panic escaped while mid-update under a write lock, and no read of that
//! state can be trusted.  This extends the pool's PR 6 abort-on-poison
//! decision to the whole engine, replacing the scattered
//! `.expect("… lock")` sites that would have unwound.  The single
//! deliberate exception is [`OrderedMutex::lock_recovering`], used by
//! `faults::exclusive()` where tests panic *by design* while holding the
//! lock and the `()` payload has no state to corrupt.
//!
//! # Adding a new lock
//!
//! Pick the smallest rank strictly above everything the new lock is
//! acquired while holding, add a [`LockRank`] variant with a doc-table
//! entry in [`LockRank::protects`], and construct the wrapper with it.
//! Debug runs of the concurrency suites then verify the choice on every
//! schedule they exercise; `ARCHITECTURE.md`'s lock-discipline table is
//! pinned to the enum by `architecture_lock_table_matches_lock_rank_enum`.

use rayon::lockcheck::{note_acquire, note_release};
use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// True when rank checking is compiled into this build: debug builds
/// always, release builds under `--features lockcheck` only.  Guard tests
/// pin the value per configuration, like `faults::COMPILED`.
pub const CHECKED: bool = rayon::lockcheck::CHECKED;

/// The total order over every lock in the process, lowest first.
///
/// A thread may acquire a lock only if its rank is strictly greater than
/// every rank the thread already holds.  Gate *permits* (not mutexes, but
/// held resources a thread can block on) get ranks too, which is what
/// machine-checks the serving door's cold-permit-before-admission-permit
/// rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum LockRank {
    /// `faults::exclusive()`, serializing fault-injection tests
    /// process-wide.  Lowest: a test holds it across whole evaluations.
    TestExclusive = 10,
    /// A held cold-admission permit (RAII token).  Below
    /// [`LockRank::GateAdmission`]: cold requests must take their cold
    /// permit *before* an admission slot.
    GateCold = 20,
    /// A held admission permit (RAII token).
    GateAdmission = 30,
    /// A [`Gate`](../serving/index.html)'s internal permit counter; held
    /// only for counter arithmetic and condvar waits.
    GateInternal = 40,
    /// The catalog state: database content, derived catalog, epochs.
    State = 50,
    /// The prepared-query map.
    Prepared = 60,
    /// The plan cache (nests inside [`LockRank::Prepared`] in `prepare`,
    /// and nowhere else).
    Plans = 70,
    /// The snapshot pool.
    Pool = 80,
    /// The per-database compiled-space cache (forked under the pool write
    /// lock on copy-on-write, hence above [`LockRank::Pool`]).
    SpaceCache = 90,
    /// A compiled space's lineage-event cache.
    LineageCache = 100,
    /// The shared-sampling block scheduler's tally cache (acquired briefly
    /// around lookups/inserts during estimation; never held across a
    /// sampling run).
    SharedSampler = 110,
    /// A pool worker's job deque (`rayon::lockcheck::RANK_WORKER_DEQUE`).
    WorkerDeque = 200,
    /// The pool wakeup channel: generation counter + shutdown flag.
    PoolSignal = 210,
    /// Per-batch completion state: first panic payload, done flag.
    PoolBatch = 220,
    /// The ordered result slots a `par_apply` batch writes into.  Highest:
    /// a submitter may reach it while holding any engine lock.
    PoolResults = 230,
}

impl LockRank {
    /// Every rank, lowest first — the doc table and the cross-crate pin
    /// test iterate this.
    pub const ALL: [LockRank; 15] = [
        LockRank::TestExclusive,
        LockRank::GateCold,
        LockRank::GateAdmission,
        LockRank::GateInternal,
        LockRank::State,
        LockRank::Prepared,
        LockRank::Plans,
        LockRank::Pool,
        LockRank::SpaceCache,
        LockRank::LineageCache,
        LockRank::SharedSampler,
        LockRank::WorkerDeque,
        LockRank::PoolSignal,
        LockRank::PoolBatch,
        LockRank::PoolResults,
    ];

    /// The numeric rank compared by the checker.
    pub const fn rank(self) -> u16 {
        self as u16
    }

    /// The variant name, as printed in violation messages and the doc
    /// table.
    pub const fn name(self) -> &'static str {
        match self {
            LockRank::TestExclusive => "TestExclusive",
            LockRank::GateCold => "GateCold",
            LockRank::GateAdmission => "GateAdmission",
            LockRank::GateInternal => "GateInternal",
            LockRank::State => "State",
            LockRank::Prepared => "Prepared",
            LockRank::Plans => "Plans",
            LockRank::Pool => "Pool",
            LockRank::SpaceCache => "SpaceCache",
            LockRank::LineageCache => "LineageCache",
            LockRank::SharedSampler => "SharedSampler",
            LockRank::WorkerDeque => "WorkerDeque",
            LockRank::PoolSignal => "PoolSignal",
            LockRank::PoolBatch => "PoolBatch",
            LockRank::PoolResults => "PoolResults",
        }
    }

    /// What the lock at this rank protects — the "protects" column of the
    /// `ARCHITECTURE.md` lock-discipline table.
    pub const fn protects(self) -> &'static str {
        match self {
            LockRank::TestExclusive => {
                "`faults::exclusive()` — serializes fault-injection tests process-wide"
            }
            LockRank::GateCold => "a held cold-admission permit (RAII token, not a mutex)",
            LockRank::GateAdmission => "a held admission permit (RAII token, not a mutex)",
            LockRank::GateInternal => "a gate's permit counter + wakeup condvar",
            LockRank::State => "`CatalogState`: database content, derived catalog, epochs",
            LockRank::Prepared => "the prepared-query map",
            LockRank::Plans => "the plan cache (nests inside `Prepared` in `prepare`, only)",
            LockRank::Pool => "the snapshot pool",
            LockRank::SpaceCache => {
                "the compiled-space cache (forked under the `Pool` write lock on COW)"
            }
            LockRank::LineageCache => "a compiled space's lineage-event cache",
            LockRank::SharedSampler => {
                "the shared-sampling block scheduler's tally cache (never held across sampling)"
            }
            LockRank::WorkerDeque => "a pool worker's job deque (vendored pool)",
            LockRank::PoolSignal => {
                "the pool wakeup channel: generation + shutdown (vendored pool)"
            }
            LockRank::PoolBatch => {
                "per-batch completion state: panic slot, done flag (vendored pool)"
            }
            LockRank::PoolResults => "`par_apply` ordered result slots (vendored pool)",
        }
    }

    /// Renders the lock-discipline table embedded in `ARCHITECTURE.md`
    /// (pinned there by a unit test, so the doc cannot drift from this
    /// enum).
    pub fn discipline_table() -> String {
        let mut table = String::from("| rank | lock | protects |\n|-----:|------|----------|\n");
        for rank in LockRank::ALL {
            table.push_str(&format!(
                "| {} | `{}` | {} |\n",
                rank.rank(),
                rank.name(),
                rank.protects()
            ));
        }
        table
    }
}

/// Poisoning means a panic escaped while the lock was held mid-update;
/// nothing downstream can trust the protected state, so the process ends
/// here (the engine-wide extension of the pool's abort-on-poison policy).
fn poisoned(name: &'static str) -> ! {
    eprintln!("lock \"{name}\" poisoned: a panic escaped while it was held; aborting");
    std::process::abort();
}

/// A mutex with a static [`LockRank`], panicking on out-of-order
/// acquisition (checked builds) and aborting on poisoning (all builds).
pub struct OrderedMutex<T> {
    rank: LockRank,
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Creates the mutex; `name` identifies the lock in violation
    /// messages.
    pub const fn new(rank: LockRank, name: &'static str, value: T) -> OrderedMutex<T> {
        OrderedMutex {
            rank,
            name,
            inner: Mutex::new(value),
        }
    }

    /// Locks, panicking on a rank violation and aborting if poisoned.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        note_acquire(self.rank.rank(), self.name, false);
        match self.inner.lock() {
            Ok(guard) => OrderedMutexGuard {
                rank: self.rank,
                name: self.name,
                guard: Some(guard),
            },
            Err(_) => poisoned(self.name),
        }
    }

    /// Like [`lock`](OrderedMutex::lock), but *recovers* from poisoning
    /// instead of aborting.  Only for locks whose payload cannot be left
    /// inconsistent by an unwinding holder — in this workspace, the `()`
    /// payload of `faults::exclusive()`, which fault tests poison by
    /// design.
    pub fn lock_recovering(&self) -> OrderedMutexGuard<'_, T> {
        note_acquire(self.rank.rank(), self.name, false);
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        OrderedMutexGuard {
            rank: self.rank,
            name: self.name,
            guard: Some(guard),
        }
    }
}

impl<T> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Guard for an [`OrderedMutex`]; pops its rank on drop.
pub struct OrderedMutexGuard<'a, T> {
    rank: LockRank,
    name: &'static str,
    /// `None` only transiently inside [`OrderedCondvar`] waits, where the
    /// std guard is surrendered to the condvar while the rank stays held.
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.take().is_some() {
            note_release(self.rank.rank(), self.name);
        }
    }
}

/// A reader–writer lock with a static [`LockRank`]; read and write guards
/// both hold the rank (two read acquisitions of the same lock on one
/// thread are a violation — by design, since a writer queued between them
/// deadlocks that interleaving).
pub struct OrderedRwLock<T> {
    rank: LockRank,
    name: &'static str,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Creates the lock; `name` identifies it in violation messages.
    pub const fn new(rank: LockRank, name: &'static str, value: T) -> OrderedRwLock<T> {
        OrderedRwLock {
            rank,
            name,
            inner: RwLock::new(value),
        }
    }

    /// Takes a shared read guard, panicking on a rank violation and
    /// aborting if poisoned.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        note_acquire(self.rank.rank(), self.name, false);
        match self.inner.read() {
            Ok(guard) => OrderedReadGuard {
                rank: self.rank,
                name: self.name,
                guard,
            },
            Err(_) => poisoned(self.name),
        }
    }

    /// Takes the exclusive write guard, panicking on a rank violation and
    /// aborting if poisoned.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        note_acquire(self.rank.rank(), self.name, false);
        match self.inner.write() {
            Ok(guard) => OrderedWriteGuard {
                rank: self.rank,
                name: self.name,
                guard,
            },
            Err(_) => poisoned(self.name),
        }
    }
}

impl<T> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Shared read guard for an [`OrderedRwLock`]; pops its rank on drop.
pub struct OrderedReadGuard<'a, T> {
    rank: LockRank,
    name: &'static str,
    guard: RwLockReadGuard<'a, T>,
}

impl<T> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        note_release(self.rank.rank(), self.name);
    }
}

/// Exclusive write guard for an [`OrderedRwLock`]; pops its rank on drop.
pub struct OrderedWriteGuard<'a, T> {
    rank: LockRank,
    name: &'static str,
    guard: RwLockWriteGuard<'a, T>,
}

impl<T> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        note_release(self.rank.rank(), self.name);
    }
}

/// A condition variable paired with [`OrderedMutex`].  Waiting keeps the
/// mutex's rank on the held stack: the waiter owns the lock again before
/// `wait` returns, and a blocked thread acquires nothing in between.
pub struct OrderedCondvar {
    inner: Condvar,
}

impl OrderedCondvar {
    /// Creates the condvar.
    pub const fn new() -> OrderedCondvar {
        OrderedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Blocks until notified, aborting if the mutex is poisoned.
    pub fn wait<'a, T>(&self, mut guard: OrderedMutexGuard<'a, T>) -> OrderedMutexGuard<'a, T> {
        let name = guard.name;
        let inner = guard.guard.take().expect("guard present outside wait");
        match self.inner.wait(inner) {
            Ok(reacquired) => {
                guard.guard = Some(reacquired);
                guard
            }
            Err(_) => poisoned(name),
        }
    }

    /// Blocks until notified or `timeout` elapses, aborting if the mutex
    /// is poisoned.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: OrderedMutexGuard<'a, T>,
        timeout: Duration,
    ) -> (OrderedMutexGuard<'a, T>, std::sync::WaitTimeoutResult) {
        let name = guard.name;
        let inner = guard.guard.take().expect("guard present outside wait");
        match self.inner.wait_timeout(inner, timeout) {
            Ok((reacquired, timed_out)) => {
                guard.guard = Some(reacquired);
                (guard, timed_out)
            }
            Err(_) => poisoned(name),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for OrderedCondvar {
    fn default() -> OrderedCondvar {
        OrderedCondvar::new()
    }
}

impl fmt::Debug for OrderedCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedCondvar").finish_non_exhaustive()
    }
}

/// An RAII rank token for held resources that are not mutexes but that a
/// thread can block on — gate permits.  Holding the token subjects every
/// later acquisition to the same strictly-increasing-rank rule, which is
/// how the cold-permit-before-admission-permit order is machine-checked.
#[derive(Debug)]
pub struct HeldRank {
    rank: LockRank,
    name: &'static str,
}

impl HeldRank {
    /// Pushes `rank` onto the current thread's held stack (panicking if it
    /// does not strictly increase); popped when the token drops.
    pub fn acquire(rank: LockRank, name: &'static str) -> HeldRank {
        note_acquire(rank.rank(), name, false);
        HeldRank { rank, name }
    }
}

impl Drop for HeldRank {
    fn drop(&mut self) {
        note_release(self.rank.rank(), self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Like `faults::default_build_has_no_failpoints`: a release build
    /// without the feature must compile the checker out entirely.
    #[cfg(all(not(debug_assertions), not(feature = "lockcheck")))]
    #[test]
    fn release_build_compiles_lockcheck_out() {
        const { assert!(!super::CHECKED) }
    }

    /// Debug builds and `--features lockcheck` builds must check.
    #[cfg(any(debug_assertions, feature = "lockcheck"))]
    #[test]
    fn checked_build_compiles_lockcheck_in() {
        const { assert!(super::CHECKED) }
    }

    #[test]
    fn ranks_are_strictly_increasing_and_pin_the_pool_constants() {
        for pair in LockRank::ALL.windows(2) {
            assert!(
                pair[0].rank() < pair[1].rank(),
                "{} must rank below {}",
                pair[0].name(),
                pair[1].name()
            );
        }
        // This enum is the source of truth; the pool mirrors its four
        // ranks as numeric constants.
        assert_eq!(
            LockRank::WorkerDeque.rank(),
            rayon::lockcheck::RANK_WORKER_DEQUE
        );
        assert_eq!(
            LockRank::PoolSignal.rank(),
            rayon::lockcheck::RANK_POOL_SIGNAL
        );
        assert_eq!(
            LockRank::PoolBatch.rank(),
            rayon::lockcheck::RANK_POOL_BATCH
        );
        assert_eq!(
            LockRank::PoolResults.rank(),
            rayon::lockcheck::RANK_POOL_RESULTS
        );
    }

    #[test]
    fn in_order_acquisition_is_clean_in_every_build() {
        let state = OrderedRwLock::new(LockRank::State, "test.state", 1u32);
        let plans = OrderedMutex::new(LockRank::Plans, "test.plans", 2u32);
        let pool = OrderedRwLock::new(LockRank::Pool, "test.pool", 3u32);
        let balance = rayon::lockcheck::held_ranks();
        {
            let s = state.read();
            let p = plans.lock();
            let q = pool.write();
            assert_eq!(*s + *p + *q, 6);
        }
        assert_eq!(rayon::lockcheck::held_ranks(), balance);
    }

    #[test]
    fn rank_inversion_panics_when_checked_and_is_free_otherwise() {
        let state = OrderedRwLock::new(LockRank::State, "test.state", ());
        let pool = OrderedRwLock::new(LockRank::Pool, "test.pool", ());
        let held = pool.write();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _inverted = state.read();
        }));
        drop(held);
        if CHECKED {
            let payload = result.expect_err("acquiring State under Pool must panic");
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                message.contains("test.state") && message.contains("test.pool"),
                "violation must name both sites: {message}"
            );
            assert!(message.contains("rank violation"), "{message}");
        } else {
            assert!(result.is_ok(), "unchecked builds must not enforce ranks");
        }
        // The inversion was caught before the std lock was touched, so the
        // locks stay usable in rank order.
        let _s = state.read();
        drop(_s);
        let _q = pool.write();
    }

    #[test]
    fn guards_can_be_released_out_of_order() {
        let state = OrderedRwLock::new(LockRank::State, "test.state", ());
        let pool = OrderedRwLock::new(LockRank::Pool, "test.pool", ());
        let balance = rayon::lockcheck::held_ranks();
        let s = state.read();
        let q = pool.read();
        drop(s); // release the *lower* rank first
        drop(q);
        assert_eq!(rayon::lockcheck::held_ranks(), balance);
        // And the low rank is acquirable again afterwards.
        let _s = state.read();
    }

    /// The serving door's permit protocol as a table: cold permits must be
    /// taken before admission permits (both before any engine lock), and
    /// the inverse order is a checked violation.  This is satellite proof
    /// that the two-gate hardening from the concurrent-serving PR is
    /// *expressible* under the ranks — the gates sit below `State`.
    #[test]
    fn gate_permit_order_table() {
        let ok_orders: [&[LockRank]; 3] = [
            &[LockRank::GateCold, LockRank::GateAdmission],
            &[LockRank::GateCold, LockRank::GateAdmission, LockRank::State],
            &[LockRank::GateAdmission, LockRank::State],
        ];
        for order in ok_orders {
            let tokens: Vec<HeldRank> = order
                .iter()
                .map(|&rank| HeldRank::acquire(rank, rank.name()))
                .collect();
            drop(tokens);
        }
        if !CHECKED {
            return;
        }
        let violations: [&[LockRank]; 2] = [
            &[LockRank::GateAdmission, LockRank::GateCold],
            &[LockRank::State, LockRank::GateAdmission],
        ];
        for order in violations {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _tokens: Vec<HeldRank> = order
                    .iter()
                    .map(|&rank| HeldRank::acquire(rank, rank.name()))
                    .collect();
            }));
            assert!(
                result.is_err(),
                "order {:?} must violate the rank discipline",
                order.iter().map(|r| r.name()).collect::<Vec<_>>()
            );
            // The successfully-acquired prefix tokens were dropped by the
            // unwind; the stack must be balanced again.
            assert_eq!(rayon::lockcheck::held_ranks(), 0);
        }
    }

    #[test]
    fn condvar_wait_timeout_keeps_the_rank_held() {
        let gate = OrderedMutex::new(LockRank::GateInternal, "test.gate", 0u32);
        let cv = OrderedCondvar::new();
        let balance = rayon::lockcheck::held_ranks();
        let guard = gate.lock();
        let (guard, timed_out) = cv.wait_timeout(guard, Duration::from_millis(1));
        assert!(timed_out.timed_out());
        if CHECKED {
            assert_eq!(rayon::lockcheck::held_ranks(), balance + 1);
        }
        drop(guard);
        assert_eq!(rayon::lockcheck::held_ranks(), balance);
    }

    #[test]
    fn lock_recovering_survives_a_poisoning_panic() {
        let lock = std::sync::Arc::new(OrderedMutex::new(
            LockRank::TestExclusive,
            "test.recovering",
            (),
        ));
        let poisoner = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock();
            panic!("poison the lock");
        })
        .join();
        // `lock()` would abort here; `lock_recovering` hands the guard
        // back because `()` cannot be left inconsistent.
        let _guard = lock.lock_recovering();
    }

    #[test]
    fn discipline_table_covers_every_rank() {
        let table = LockRank::discipline_table();
        for rank in LockRank::ALL {
            assert!(table.contains(rank.name()), "missing {}", rank.name());
            assert!(
                table.contains(&format!("| {} |", rank.rank())),
                "missing rank {}",
                rank.rank()
            );
        }
    }

    /// The "Lock discipline" table in ARCHITECTURE.md is generated from
    /// [`LockRank`]; regenerate it with [`LockRank::discipline_table`]
    /// when the enum changes.
    #[test]
    fn architecture_lock_table_matches_lock_rank_enum() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../ARCHITECTURE.md");
        let doc = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let begin = "<!-- lock-discipline:begin -->";
        let end = "<!-- lock-discipline:end -->";
        let start = doc
            .find(begin)
            .expect("ARCHITECTURE.md must carry the lock-discipline begin marker")
            + begin.len();
        let stop = doc
            .find(end)
            .expect("ARCHITECTURE.md must carry the lock-discipline end marker");
        let embedded = doc[start..stop].trim();
        let generated = LockRank::discipline_table();
        assert_eq!(
            embedded,
            generated.trim(),
            "ARCHITECTURE.md lock-discipline table is stale; regenerate it \
             from LockRank::discipline_table()"
        );
    }
}
