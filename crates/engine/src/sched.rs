//! The shared block scheduler: cross-request reuse of drawn sample blocks.
//!
//! Shared-sampling engines ([`EvalConfig::shared_sampling`]) derive every
//! approximate-confidence stream from the *content* of the compiled lineage
//! arena (`LineagePrograms::fingerprint`) instead of the caller's seed, so
//! the tally a Karp–Luby run produces for an event is a pure function of
//! `(content, ε/δ-implied sample count, configuration)`.  That purity is
//! what makes sharing sound: when several concurrent requests resolve to
//! the same compiled event arena, the first to arrive draws the world
//! blocks and every later (or concurrently waiting) request's tally is fed
//! from the same drawn blocks — a lookup, not a re-run — while requests
//! touching unshared events keep their own streams, bit-identical to a
//! scheduler-free run of the same configuration.
//!
//! The scheduler is deliberately *not* a correctness layer: removing it (or
//! evicting any entry) only re-draws the identical canonical blocks.  Its
//! mutex therefore ranks between the lineage caches and the worker pool
//! ([`LockRank::SharedSampler`]) and is held only around lookups and
//! inserts — never across a sampling run, so concurrent requests sampling
//! *different* events proceed in parallel.
//!
//! [`EvalConfig::shared_sampling`]: crate::EvalConfig::shared_sampling

use crate::sync::{LockRank, OrderedMutex};
use confidence::EventEstimate;
use std::collections::BTreeMap;

/// Bound on retained tallies; past it the oldest key is evicted (eviction
/// is invisible apart from the re-draw cost — values are pure functions of
/// their keys).
const MAX_TALLIES: usize = 4096;

/// Tally key: `(arena fingerprint, event index, sample count)`.  The sample
/// count participates because prepared queries with different (ε, δ) share
/// compiled arenas but draw different Chernoff budgets.
type TallyKey = (u64, u32, u64);

/// A cross-request cache of canonical-stream sample tallies; one per
/// serving engine, shared by every concurrent request.
#[derive(Debug)]
pub struct SampleScheduler {
    tallies: OrderedMutex<BTreeMap<TallyKey, EventEstimate>>,
}

impl Default for SampleScheduler {
    fn default() -> Self {
        SampleScheduler::new()
    }
}

impl SampleScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        SampleScheduler {
            tallies: OrderedMutex::new(LockRank::SharedSampler, "sched.tallies", BTreeMap::new()),
        }
    }

    /// Returns the tally for `(fingerprint, index, samples)`, drawing it
    /// with `draw` on the first request.  The boolean is true when the
    /// tally was served from a previously drawn block (a *shared block
    /// hit*).
    ///
    /// `draw` runs outside the lock; two racing requests for the same key
    /// may both draw, but canonical streams make their results identical,
    /// so whichever insert lands is the value every later request sees.
    pub fn estimate<E>(
        &self,
        fingerprint: u64,
        index: u32,
        samples: u64,
        draw: impl FnOnce() -> Result<EventEstimate, E>,
    ) -> Result<(EventEstimate, bool), E> {
        let key = (fingerprint, index, samples);
        if let Some(&cached) = self.tallies.lock().get(&key) {
            return Ok((cached, true));
        }
        let drawn = draw()?;
        let mut tallies = self.tallies.lock();
        while tallies.len() >= MAX_TALLIES {
            tallies.pop_first();
        }
        tallies.insert(key, drawn);
        Ok((drawn, false))
    }

    /// Number of retained tallies (for stats and tests).
    pub fn len(&self) -> usize {
        self.tallies.lock().len()
    }

    /// True when no tally is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate(p: f64) -> EventEstimate {
        EventEstimate {
            estimate: p,
            samples: 64,
            exact: false,
        }
    }

    #[test]
    fn first_draw_is_recorded_and_later_requests_hit() {
        let sched = SampleScheduler::new();
        let (first, hit) = sched
            .estimate::<()>(7, 0, 128, || Ok(estimate(0.25)))
            .unwrap();
        assert!(!hit);
        assert_eq!(first.estimate, 0.25);
        let (again, hit) = sched
            .estimate::<()>(7, 0, 128, || panic!("must not re-draw"))
            .unwrap();
        assert!(hit);
        assert_eq!(again, first);
        // A different sample count is a different tally.
        let (_, hit) = sched
            .estimate::<()>(7, 0, 256, || Ok(estimate(0.3)))
            .unwrap();
        assert!(!hit);
        assert_eq!(sched.len(), 2);
    }

    #[test]
    fn draw_errors_propagate_and_record_nothing() {
        let sched = SampleScheduler::new();
        assert_eq!(sched.estimate(1, 2, 3, || Err("boom")), Err("boom"));
        assert!(sched.is_empty());
    }

    #[test]
    fn the_tally_cache_is_bounded() {
        let sched = SampleScheduler::new();
        for i in 0..(MAX_TALLIES as u64 + 64) {
            sched
                .estimate::<()>(i, 0, 64, || Ok(estimate(0.5)))
                .unwrap();
        }
        assert!(sched.len() <= MAX_TALLIES);
    }
}
