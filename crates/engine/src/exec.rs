//! The U-relational query evaluator.
//!
//! Positive relational algebra, `poss` and `repair-key` are evaluated by the
//! parsimonious translation of Section 3; `conf` uses exact model counting or
//! the Karp–Luby FPRAS (Section 4); the approximate selection `σ̂` uses the
//! predicate-approximation algorithm of Figure 3 (Section 5); and per-tuple
//! error bounds are propagated through the operator tree following the
//! provenance-based analysis of Section 6.

use crate::error::{EngineError, Result};
use crate::ops;
use crate::predicate_compile::compile_predicate;
use crate::space::CompiledSpace;
use algebra::{ConfTerm, Predicate, ProjItem, Query};
use approx::{approximate_predicate, ApproximationParams};
use confidence::{chernoff, exact, FprasParams, IncrementalEstimator};
use pdb::{Schema, Tuple, Value};
use rand::Rng;
use std::collections::{BTreeMap, HashMap};
use urel::{Condition, UDatabase, URelation, Var};

/// How `σ̂` operators decide their predicates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ApproxSelectMode {
    /// Decide on exactly computed confidences (the reference semantics; no
    /// error is introduced).
    Exact,
    /// Run the adaptive algorithm of Figure 3 with the operator's own
    /// (ε₀, δ).
    Adaptive,
    /// Draw exactly `l` batches per estimator, then decide once.  This is the
    /// inner step of the Theorem 6.7 whole-query approximation, which doubles
    /// `l` from the outside until the output error target is met.
    FixedIterations(usize),
}

/// How `conf` operators compute confidence values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfidenceMode {
    /// Exact model counting (Shannon expansion).
    Exact,
    /// The Karp–Luby FPRAS with the given default (ε, δ) for `conf`
    /// operators; explicit `conf_{ε,δ}` operators always use their own
    /// parameters.
    Fpras {
        /// Default relative error.
        epsilon: f64,
        /// Default error probability.
        delta: f64,
    },
}

/// Evaluator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalConfig {
    /// Strategy for `σ̂` operators.
    pub approx_select: ApproxSelectMode,
    /// Strategy for `conf` operators.
    pub confidence: ConfidenceMode,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            approx_select: ApproxSelectMode::Adaptive,
            confidence: ConfidenceMode::Exact,
        }
    }
}

impl EvalConfig {
    /// The fully exact reference configuration.
    pub fn exact() -> Self {
        EvalConfig {
            approx_select: ApproxSelectMode::Exact,
            confidence: ConfidenceMode::Exact,
        }
    }
}

/// Evaluation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalStats {
    /// Total Karp–Luby samples drawn (FPRAS and σ̂ together).
    pub karp_luby_samples: u64,
    /// Number of exact model-counting calls.
    pub exact_confidence_calls: u64,
    /// Number of `conf`/`conf_{ε,δ}` operators evaluated.
    pub conf_operators: u64,
    /// Number of `σ̂` operators evaluated.
    pub approx_select_operators: u64,
    /// Number of candidate tuples decided by `σ̂` operators.
    pub approx_select_decisions: u64,
}

/// One evaluated (sub)query result.
#[derive(Clone, Debug)]
pub struct EvaluatedRelation {
    /// The result rows.
    pub relation: URelation,
    /// The paper's completeness flag `c` for the result.
    pub complete: bool,
    /// Per-tuple membership error bounds (missing tuples have error 0);
    /// non-zero only below/at approximate selections.
    pub errors: BTreeMap<Tuple, f64>,
}

impl EvaluatedRelation {
    fn reliable(relation: URelation, complete: bool) -> Self {
        EvaluatedRelation {
            relation,
            complete,
            errors: BTreeMap::new(),
        }
    }

    /// The error bound recorded for a tuple (0 if none).
    pub fn error_of(&self, t: &Tuple) -> f64 {
        self.errors.get(t).copied().unwrap_or(0.0)
    }

    /// The largest per-tuple error bound in the result.
    pub fn max_error(&self) -> f64 {
        self.errors.values().copied().fold(0.0, f64::max)
    }
}

/// The outcome of evaluating a query.
#[derive(Clone, Debug)]
pub struct EvalOutput {
    /// The result relation.
    pub result: EvaluatedRelation,
    /// The database state after evaluation (includes the random variables
    /// introduced by `repair-key`).
    pub database: UDatabase,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

/// The U-relational query engine.
#[derive(Clone, Debug, Default)]
pub struct UEngine {
    config: EvalConfig,
}

impl UEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EvalConfig) -> Self {
        UEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Evaluates a UA query over a U-relational database.
    pub fn evaluate<R: Rng + ?Sized>(
        &self,
        database: &UDatabase,
        query: &Query,
        rng: &mut R,
    ) -> Result<EvalOutput> {
        let mut ctx = Context {
            config: self.config,
            database: database.clone(),
            cache: HashMap::new(),
            stats: EvalStats::default(),
            var_counter: 0,
        };
        let result = ctx.eval(query, rng)?;
        Ok(EvalOutput {
            result,
            database: ctx.database,
            stats: ctx.stats,
        })
    }
}

struct Context {
    config: EvalConfig,
    database: UDatabase,
    /// Structural memoisation: shared subqueries (e.g. the relation `S` used
    /// twice in Example 2.2's join) are evaluated once, which also makes them
    /// share the random variables introduced by `repair-key`.
    cache: HashMap<String, EvaluatedRelation>,
    stats: EvalStats,
    var_counter: usize,
}

impl Context {
    fn eval<R: Rng + ?Sized>(&mut self, query: &Query, rng: &mut R) -> Result<EvaluatedRelation> {
        let key = query.to_string();
        if let Some(cached) = self.cache.get(&key) {
            return Ok(cached.clone());
        }
        let result = self.eval_uncached(query, rng)?;
        self.cache.insert(key, result.clone());
        Ok(result)
    }

    fn eval_uncached<R: Rng + ?Sized>(
        &mut self,
        query: &Query,
        rng: &mut R,
    ) -> Result<EvaluatedRelation> {
        match query {
            Query::Table(name) => {
                let rel = self.database.relation(name)?.clone();
                let complete = self.database.is_complete(name);
                Ok(EvaluatedRelation::reliable(rel, complete))
            }
            Query::Select { input, predicate } => {
                let input = self.eval(input, rng)?;
                let relation = ops::select(&input.relation, predicate)?;
                Ok(self.propagate_unary(relation, &input))
            }
            Query::Project { input, items } => {
                let input = self.eval(input, rng)?;
                let relation = ops::project(&input.relation, items)?;
                Ok(self.propagate_projection(relation, &input, items)?)
            }
            Query::Extend { input, items } => {
                let input = self.eval(input, rng)?;
                let relation = ops::extend(&input.relation, items)?;
                Ok(self.propagate_unary(relation, &input))
            }
            Query::Rename { input, from, to } => {
                let input = self.eval(input, rng)?;
                let relation = ops::rename(&input.relation, from, to)?;
                Ok(self.propagate_unary(relation, &input))
            }
            Query::Product { left, right } => {
                let left = self.eval(left, rng)?;
                let right = self.eval(right, rng)?;
                let relation = ops::product(&left.relation, &right.relation)?;
                Ok(self.propagate_binary(relation, &left, &right))
            }
            Query::NaturalJoin { left, right } => {
                let left = self.eval(left, rng)?;
                let right = self.eval(right, rng)?;
                let relation = ops::natural_join(&left.relation, &right.relation)?;
                Ok(self.propagate_binary(relation, &left, &right))
            }
            Query::Union { left, right } => {
                let left = self.eval(left, rng)?;
                let right = self.eval(right, rng)?;
                let relation = ops::union(&left.relation, &right.relation)?;
                Ok(self.propagate_binary(relation, &left, &right))
            }
            Query::Difference { left, right } => {
                let left = self.eval(left, rng)?;
                let right = self.eval(right, rng)?;
                if !(left.relation.is_complete_representation()
                    && right.relation.is_complete_representation())
                {
                    return Err(EngineError::Unsupported(
                        "difference over uncertain relations is outside positive UA; use −c on complete inputs"
                            .into(),
                    ));
                }
                let relation = ops::difference_complete(&left.relation, &right.relation)?;
                Ok(self.propagate_binary(relation, &left, &right))
            }
            Query::DifferenceC { left, right } => {
                let left = self.eval(left, rng)?;
                let right = self.eval(right, rng)?;
                let relation = ops::difference_complete(&left.relation, &right.relation)?;
                Ok(self.propagate_binary(relation, &left, &right))
            }
            Query::Conf { input, prob_attr } => {
                let input = self.eval(input, rng)?;
                let params = match self.config.confidence {
                    ConfidenceMode::Exact => None,
                    ConfidenceMode::Fpras { epsilon, delta } => {
                        Some(FprasParams::new(epsilon, delta)?)
                    }
                };
                self.conf_operator(&input, prob_attr, params, rng)
            }
            Query::ApproxConf {
                input,
                prob_attr,
                epsilon,
                delta,
            } => {
                let input = self.eval(input, rng)?;
                let params = FprasParams::new(*epsilon, *delta)?;
                self.conf_operator(&input, prob_attr, Some(params), rng)
            }
            Query::RepairKey { input, key, weight } => {
                let input = self.eval(input, rng)?;
                self.repair_key(&input, key, weight)
            }
            Query::Poss { input } => {
                let input = self.eval(input, rng)?;
                let relation = URelation::from_complete(&input.relation.possible_tuples());
                Ok(self.propagate_unary_complete(relation, &input))
            }
            Query::Cert { input } => {
                let input = self.eval(input, rng)?;
                self.cert_operator(&input)
            }
            Query::ApproxSelect {
                input,
                terms,
                predicate,
                epsilon0,
                delta,
            } => {
                let input = self.eval(input, rng)?;
                self.approx_select(&input, terms, predicate, *epsilon0, *delta, rng)
            }
        }
    }

    // ---- error-bound propagation (Lemma 6.4(1)) ---------------------------

    fn propagate_unary(&self, relation: URelation, input: &EvaluatedRelation) -> EvaluatedRelation {
        // Selection/extension/renaming keep tuples in 1:1 correspondence with
        // input tuples (modulo data-only transformation), so each output
        // tuple inherits the error of the input tuples it came from.  For
        // simplicity and soundness we look the error up by the shared data
        // prefix when arities match, falling back to the sum of all input
        // errors when they do not.
        if input.errors.is_empty() {
            return EvaluatedRelation {
                relation,
                complete: input.complete,
                errors: BTreeMap::new(),
            };
        }
        if relation.schema() == input.relation.schema() {
            let errors = relation
                .possible_tuples()
                .iter()
                .filter_map(|t| input.errors.get(t).map(|e| (t.clone(), *e)))
                .filter(|(_, e)| *e > 0.0)
                .collect();
            return EvaluatedRelation {
                relation,
                complete: input.complete,
                errors,
            };
        }
        let total: f64 = input.errors.values().sum::<f64>().min(1.0);
        let errors = relation
            .possible_tuples()
            .iter()
            .map(|t| (t.clone(), total))
            .collect();
        EvaluatedRelation {
            relation,
            complete: input.complete,
            errors,
        }
    }

    fn propagate_unary_complete(
        &self,
        relation: URelation,
        input: &EvaluatedRelation,
    ) -> EvaluatedRelation {
        let mut out = self.propagate_unary(relation, input);
        out.complete = true;
        out
    }

    fn propagate_projection(
        &self,
        relation: URelation,
        input: &EvaluatedRelation,
        items: &[ProjItem],
    ) -> Result<EvaluatedRelation> {
        if input.errors.is_empty() {
            return Ok(EvaluatedRelation {
                relation,
                complete: input.complete,
                errors: BTreeMap::new(),
            });
        }
        // Each output tuple's membership can change whenever any input tuple
        // that projects onto it changes (Example 6.5): sum the errors of the
        // contributing input tuples.
        let mut errors: BTreeMap<Tuple, f64> = BTreeMap::new();
        for t in input.relation.possible_tuples().iter() {
            let e = input.error_of(t);
            if e == 0.0 {
                continue;
            }
            let mut values = Vec::with_capacity(items.len());
            for item in items {
                values.push(item.expr.eval(input.relation.schema(), t)?);
            }
            let out_t = Tuple::new(values);
            *errors.entry(out_t).or_insert(0.0) += e;
        }
        for e in errors.values_mut() {
            *e = e.min(1.0);
        }
        Ok(EvaluatedRelation {
            relation,
            complete: input.complete,
            errors,
        })
    }

    fn propagate_binary(
        &self,
        relation: URelation,
        left: &EvaluatedRelation,
        right: &EvaluatedRelation,
    ) -> EvaluatedRelation {
        let complete = left.complete && right.complete;
        if left.errors.is_empty() && right.errors.is_empty() {
            return EvaluatedRelation {
                relation,
                complete,
                errors: BTreeMap::new(),
            };
        }
        // Conservative propagation: any output tuple of a binary operation
        // depends on at most one tuple from each side plus, for unions, on a
        // tuple of either side; we bound its error by the sum of the maximal
        // per-side errors (capped at 1).  This over-approximates Lemma 6.4
        // but never under-reports.
        let bound = (left.max_error() + right.max_error()).min(1.0);
        let errors = relation
            .possible_tuples()
            .iter()
            .map(|t| (t.clone(), bound))
            .collect();
        EvaluatedRelation {
            relation,
            complete,
            errors,
        }
    }

    // ---- conf / cert -------------------------------------------------------

    fn conf_operator<R: Rng + ?Sized>(
        &mut self,
        input: &EvaluatedRelation,
        prob_attr: &str,
        params: Option<FprasParams>,
        rng: &mut R,
    ) -> Result<EvaluatedRelation> {
        self.stats.conf_operators += 1;
        let compiled = CompiledSpace::compile(self.database.wtable())?;
        let schema = input
            .relation
            .schema()
            .with_appended(prob_attr)
            .map_err(EngineError::Pdb)?;
        let mut out = URelation::empty(schema);
        let mut errors: BTreeMap<Tuple, f64> = BTreeMap::new();
        for t in input.relation.possible_tuples().iter() {
            let event = compiled.event(&input.relation.conditions_for(t))?;
            let p = match params {
                None => {
                    self.stats.exact_confidence_calls += 1;
                    exact::probability(&event, compiled.space())?
                }
                Some(params) => {
                    let estimate =
                        confidence::approximate_confidence(&event, compiled.space(), params, rng)?;
                    self.stats.karp_luby_samples += estimate.samples as u64;
                    estimate.estimate
                }
            };
            let out_t = t.with_appended(Value::float(p));
            out.insert(Condition::always(), out_t.clone())?;
            let e = input.error_of(t);
            if e > 0.0 {
                errors.insert(out_t, e);
            }
        }
        Ok(EvaluatedRelation {
            relation: out,
            complete: true,
            errors,
        })
    }

    fn cert_operator(&mut self, input: &EvaluatedRelation) -> Result<EvaluatedRelation> {
        // Certainty is the `conf = 1` test — exactly the singularity of
        // Example 5.7 — so it is always answered by exact model counting.
        let compiled = CompiledSpace::compile(self.database.wtable())?;
        let mut out = URelation::empty(input.relation.schema().clone());
        let mut errors = BTreeMap::new();
        for t in input.relation.possible_tuples().iter() {
            let event = compiled.event(&input.relation.conditions_for(t))?;
            self.stats.exact_confidence_calls += 1;
            let p = exact::probability(&event, compiled.space())?;
            if (p - 1.0).abs() < 1e-9 {
                out.insert(Condition::always(), t.clone())?;
                let e = input.error_of(t);
                if e > 0.0 {
                    errors.insert(t.clone(), e);
                }
            }
        }
        Ok(EvaluatedRelation {
            relation: out,
            complete: true,
            errors,
        })
    }

    // ---- repair-key --------------------------------------------------------

    fn repair_key(
        &mut self,
        input: &EvaluatedRelation,
        key: &[String],
        weight: &str,
    ) -> Result<EvaluatedRelation> {
        if !input.relation.is_complete_representation() {
            return Err(EngineError::NotComplete(
                "repair-key requires a complete input relation".into(),
            ));
        }
        let complete = input.relation.possible_tuples();
        let key_refs: Vec<&str> = key.iter().map(String::as_str).collect();
        let groups = complete.group_by(&key_refs).map_err(EngineError::Pdb)?;

        let mut out = URelation::empty(complete.schema().clone());
        for (key_tuple, members) in groups {
            // Validate and normalise the weights.
            let mut weights = Vec::with_capacity(members.len());
            let mut total = 0.0;
            for t in &members {
                let w = complete.numeric_value(t, weight).map_err(EngineError::Pdb)?;
                if !(w > 0.0) || !w.is_finite() {
                    return Err(EngineError::Pdb(pdb::PdbError::InvalidWeight(format!(
                        "weight {w} of tuple {t} is not a positive finite number"
                    ))));
                }
                total += w;
                weights.push(w);
            }
            if members.len() == 1 {
                // A single candidate is chosen with probability 1; no random
                // variable is needed.
                out.insert(Condition::always(), members[0].clone())?;
                continue;
            }
            // One fresh variable per key group (the Section 3 translation
            // names it after the key values; we add a counter for global
            // uniqueness across repeated repair-key applications).
            self.var_counter += 1;
            let var = Var::new(format!("rk{}:{}", self.var_counter, key_tuple));
            let dist: Vec<(Value, f64)> = weights
                .iter()
                .enumerate()
                .map(|(i, w)| (Value::Int(i as i64), w / total))
                .collect();
            self.database.wtable_mut().add_variable(var.clone(), dist)?;
            for (i, t) in members.iter().enumerate() {
                let cond = Condition::new([(var.clone(), Value::Int(i as i64))])?;
                out.insert(cond, t.clone())?;
            }
        }

        let errors = if input.errors.is_empty() {
            BTreeMap::new()
        } else {
            out.possible_tuples()
                .iter()
                .filter_map(|t| input.errors.get(t).map(|e| (t.clone(), *e)))
                .collect()
        };
        Ok(EvaluatedRelation {
            relation: out,
            complete: false,
            errors,
        })
    }

    // ---- approximate selection (σ̂) -----------------------------------------

    fn approx_select<R: Rng + ?Sized>(
        &mut self,
        input: &EvaluatedRelation,
        terms: &[ConfTerm],
        predicate: &Predicate,
        epsilon0: f64,
        delta: f64,
        rng: &mut R,
    ) -> Result<EvaluatedRelation> {
        self.stats.approx_select_operators += 1;
        algebra::check_conf_terms(terms, input.relation.schema())?;
        let compiled = CompiledSpace::compile(self.database.wtable())?;

        // Projections π_{A⃗_i}(R), one per confidence term.
        let mut projections = Vec::with_capacity(terms.len());
        for term in terms {
            let items: Vec<ProjItem> = term.attrs.iter().map(ProjItem::attr).collect();
            projections.push(ops::project(&input.relation, &items)?);
        }

        // The candidate output tuples: the natural join of the possible
        // tuples of the projections (over the union of the term attributes).
        let out_attrs: Vec<String> = {
            let mut attrs = Vec::new();
            for term in terms {
                for a in &term.attrs {
                    if !attrs.contains(a) {
                        attrs.push(a.clone());
                    }
                }
            }
            attrs
        };
        let out_schema = Schema::new(out_attrs.clone()).map_err(EngineError::Pdb)?;
        let mut candidates = URelation::from_complete(&pdb::Relation::new(
            Schema::empty(),
            [Tuple::empty()],
        )?);
        for proj in &projections {
            candidates = ops::natural_join(
                &candidates,
                &URelation::from_complete(&proj.possible_tuples()),
            )?;
        }
        // Reorder candidate columns to the declared output order.
        let reorder: Vec<ProjItem> = out_attrs.iter().map(ProjItem::attr).collect();
        let candidates = ops::project(&candidates, &reorder)?;

        // Compile the predicate over the term placeholders.
        let placeholders: Vec<String> = terms.iter().map(|t| t.name.clone()).collect();
        let compiled_predicate = compile_predicate(predicate, &placeholders)?;

        // The input-error contribution: the confidence terms aggregate over
        // the whole input relation, so every candidate depends on every input
        // tuple (cf. Example 6.5).
        let input_error: f64 = input.errors.values().sum::<f64>().min(1.0);

        let mut out = URelation::empty(out_schema);
        let mut errors: BTreeMap<Tuple, f64> = BTreeMap::new();
        for candidate in candidates.possible_tuples().iter() {
            self.stats.approx_select_decisions += 1;
            // Build the k events for this candidate.
            let mut events = Vec::with_capacity(terms.len());
            for (term, proj) in terms.iter().zip(&projections) {
                let idx = candidates
                    .schema()
                    .indices_of(&term.attrs)
                    .map_err(EngineError::Pdb)?;
                let key = candidate.project(&idx);
                events.push(compiled.event(&proj.conditions_for(&key))?);
            }

            let (keep, decision_error) = match self.config.approx_select {
                ApproxSelectMode::Exact => {
                    let mut values = Vec::with_capacity(events.len());
                    for event in &events {
                        self.stats.exact_confidence_calls += 1;
                        values.push(exact::probability(event, compiled.space())?);
                    }
                    (compiled_predicate.eval(&values)?, 0.0)
                }
                ApproxSelectMode::Adaptive => {
                    let mut estimators = self.estimators(&events, &compiled)?;
                    let params = ApproximationParams::new(epsilon0, delta)?;
                    let decision = approximate_predicate(
                        &compiled_predicate,
                        &mut estimators,
                        params,
                        rng,
                    )?;
                    self.stats.karp_luby_samples += decision.samples;
                    (decision.value, decision.error_bound)
                }
                ApproxSelectMode::FixedIterations(l) => {
                    let mut estimators = self.estimators(&events, &compiled)?;
                    for est in &mut estimators {
                        for _ in 0..l {
                            est.add_batch(rng);
                        }
                        self.stats.karp_luby_samples += est.samples();
                    }
                    let estimates: Vec<f64> =
                        estimators.iter().map(IncrementalEstimator::estimate).collect();
                    let keep = compiled_predicate.eval(&estimates)?;
                    let eps_psi = compiled_predicate.epsilon_homogeneous(&estimates)?;
                    let eps = eps_psi.max(epsilon0).min(0.999_999);
                    let mut bound = 0.0;
                    for est in &estimators {
                        bound += if est.is_trivial() {
                            0.0
                        } else {
                            chernoff::delta_prime(eps, l)?
                        };
                    }
                    (keep, bound.min(0.5))
                }
            };

            let total_error = (decision_error + input_error).min(1.0);
            if keep {
                out.insert(Condition::always(), candidate.clone())?;
                if total_error > 0.0 {
                    errors.insert(candidate.clone(), total_error);
                }
            } else if total_error > 0.0 {
                // Dropped tuples may also be wrongly dropped; their error is
                // recorded so that downstream negation-free operators (and
                // the adaptive driver) can still reason about them.  They are
                // keyed by the candidate tuple even though it is absent.
                errors.insert(candidate.clone(), total_error);
            }
        }

        Ok(EvaluatedRelation {
            relation: out,
            complete: false,
            errors,
        })
    }

    fn estimators(
        &self,
        events: &[confidence::DnfEvent],
        compiled: &CompiledSpace,
    ) -> Result<Vec<IncrementalEstimator>> {
        events
            .iter()
            .map(|e| {
                IncrementalEstimator::new(e.clone(), compiled.space().clone())
                    .map_err(EngineError::Confidence)
            })
            .collect()
    }
}
