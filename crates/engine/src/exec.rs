//! Engine configuration and the plan-driven evaluation entry point.
//!
//! Evaluation is a three-stage pipeline:
//!
//! 1. the query is lowered into a validated [`LogicalPlan`] (an operator DAG
//!    with per-node ε/δ annotations, shared subqueries merged — see
//!    [`algebra::plan`]),
//! 2. the logical plan is lowered into a [`PhysicalPlan`]
//!    (see [`crate::physical`]), resolving each accuracy annotation against
//!    the [`EvalConfig`] — exact model counting vs the Karp–Luby FPRAS for
//!    `conf`, and the σ̂ decision strategy,
//! 3. the physical pipeline executes over [`EvaluatedRelation`] values,
//!    estimating all tuple lineages of each confidence-bearing operator as
//!    one parallel batch.
//!
//! [`LogicalPlan`]: algebra::LogicalPlan

use crate::error::Result;
use crate::physical::{ExecContext, PhysicalPlan};
use crate::space::SpaceCache;
use algebra::{LogicalPlan, Query};
use pdb::Tuple;
use rand::{Rng, RngCore};
use std::collections::BTreeMap;
use urel::{UDatabase, URelation};

/// How `σ̂` operators decide their predicates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ApproxSelectMode {
    /// Decide on exactly computed confidences (the reference semantics; no
    /// error is introduced).
    Exact,
    /// Run the adaptive algorithm of Figure 3 with the operator's own
    /// (ε₀, δ).
    Adaptive,
    /// Draw exactly `l` batches per estimator, then decide once.  This is the
    /// inner step of the Theorem 6.7 whole-query approximation, which doubles
    /// `l` from the outside until the output error target is met.
    FixedIterations(usize),
}

/// How `conf` operators compute confidence values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfidenceMode {
    /// Exact model counting (Shannon expansion).
    Exact,
    /// The Karp–Luby FPRAS with the given default (ε, δ) for `conf`
    /// operators; explicit `conf_{ε,δ}` operators always use their own
    /// parameters.
    Fpras {
        /// Default relative error.
        epsilon: f64,
        /// Default error probability.
        delta: f64,
    },
}

/// Evaluator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalConfig {
    /// Strategy for `σ̂` operators.
    pub approx_select: ApproxSelectMode,
    /// Strategy for `conf` operators.
    pub confidence: ConfidenceMode,
    /// Number of chunks large operator inputs are split into by the sharded
    /// executor (≤ 1 keeps every operator single-batch).  Results are
    /// bit-identical for any value; this is purely a performance knob.
    pub shards: usize,
    /// Let Monte Carlo `σ̂` modes decide candidates whose exact confidence
    /// bounds already determine the predicate, skipping their sampling
    /// entirely.  Pruned decisions are exact (error 0) and the remaining
    /// candidates keep their per-candidate sub-RNGs, so disabling this only
    /// spends more samples — it cannot change an unpruned decision.
    pub prune_approx_select: bool,
    /// Largest number of (simplified) terms for which the pruning bounds run
    /// their pairwise inclusion–exclusion round (degree-two Bonferroni lower
    /// bound, Hunter–Worsley upper bound); `0` restricts pruning to the
    /// linear first-order bounds.  Like pruning itself this is decision-
    /// neutral: refined bounds are exact, so a larger limit can only decide
    /// *more* candidates without sampling.
    pub pairwise_bound_limit: usize,
    /// Approximate per-chunk memory budget (bytes) of the out-of-core spill
    /// tier.  `0` (the default) keeps every operator chunk resident.  A
    /// positive budget makes the pure-operator executor split inputs into
    /// byte-budgeted chunks and write chunk *outputs* heavier than the
    /// budget to digest-verified temporary segment files, merging them back
    /// by streaming set-semantics decode — bounding resident output memory
    /// at roughly one chunk.  Results are bit-identical for any value; this
    /// is purely a memory/scale knob.
    pub spill_budget_bytes: usize,
    /// Hard circuit budget (nodes) of the exact d-DNNF backend on the
    /// approximate-confidence path; `0` (the default) disables the backend.
    /// When enabled, the per-event cost model compiles moderate-width
    /// lineages and answers them **exactly** — seed-independent, zero
    /// samples, trivially within every (ε, δ) guarantee — while oversized
    /// circuits abort at the budget and sample exactly as before
    /// (bit-identical to a backend-free run).
    /// `confidence::cost::DEFAULT_NODE_BUDGET` is the recommended setting
    /// for serving.
    pub exact_backend_node_budget: u32,
    /// Derive approximate-confidence sampling streams from the *content* of
    /// the compiled lineage arena instead of the caller's seed.  Answers
    /// become pure functions of (content, configuration, ε/δ) — still one
    /// legitimate Karp–Luby run within every (ε, δ) guarantee — which lets
    /// concurrent serving requests that resolve to the same compiled events
    /// share one drawn block tally (see `engine::sched`) without breaking
    /// warm ≡ cold bit-identity.  Off by default: the classic behavior
    /// draws per-request streams from the caller's RNG.
    pub shared_sampling: bool,
}

/// Default shard count: one chunk per hardware thread, capped (chunking has
/// per-chunk overhead and the join index is shared anyway), but never below
/// 2 — the chunked join's shared key index wins even single-threaded, so the
/// default configuration should get it.  Derived from the machine's available
/// parallelism directly (not the pool's worker count) so configuration
/// defaults do not depend on pool initialization order; `with_shards` /
/// explicit field writes always win.
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(2, 8)
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            approx_select: ApproxSelectMode::Adaptive,
            confidence: ConfidenceMode::Exact,
            shards: default_shards(),
            prune_approx_select: true,
            pairwise_bound_limit: confidence::DEFAULT_PAIRWISE_TERM_LIMIT,
            spill_budget_bytes: 0,
            exact_backend_node_budget: 0,
            shared_sampling: false,
        }
    }
}

impl EvalConfig {
    /// The fully exact reference configuration.
    pub fn exact() -> Self {
        EvalConfig {
            approx_select: ApproxSelectMode::Exact,
            confidence: ConfidenceMode::Exact,
            ..EvalConfig::default()
        }
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables or disables σ̂ candidate pruning.
    pub fn with_pruning(mut self, prune: bool) -> Self {
        self.prune_approx_select = prune;
        self
    }

    /// Sets the term limit of the pairwise (Bonferroni / Hunter–Worsley)
    /// bound refinement; `0` keeps pruning on first-order bounds only.
    pub fn with_pairwise_bound_limit(mut self, limit: usize) -> Self {
        self.pairwise_bound_limit = limit;
        self
    }

    /// Sets the spill tier's per-chunk byte budget (`0` = fully resident).
    pub fn with_spill_budget_bytes(mut self, bytes: usize) -> Self {
        self.spill_budget_bytes = bytes;
        self
    }

    /// Sets the exact d-DNNF backend's hard node budget (`0` disables the
    /// backend; `confidence::cost::DEFAULT_NODE_BUDGET` is the recommended
    /// serving setting).
    pub fn with_exact_backend(mut self, node_budget: u32) -> Self {
        self.exact_backend_node_budget = node_budget;
        self
    }

    /// Enables or disables content-derived (shared) sampling streams.
    pub fn with_shared_sampling(mut self, shared: bool) -> Self {
        self.shared_sampling = shared;
        self
    }
}

/// Evaluation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalStats {
    /// Total Karp–Luby samples drawn (FPRAS and σ̂ together).
    pub karp_luby_samples: u64,
    /// Number of exact model-counting calls.
    pub exact_confidence_calls: u64,
    /// Number of `conf`/`conf_{ε,δ}` operators evaluated.
    pub conf_operators: u64,
    /// Number of `σ̂` operators evaluated.
    pub approx_select_operators: u64,
    /// Number of candidate tuples decided by `σ̂` operators.
    pub approx_select_decisions: u64,
    /// Number of σ̂ candidates decided by exact confidence bounds before any
    /// sampling (a subset of `approx_select_decisions`).
    pub approx_select_pruned: u64,
    /// Approximate-confidence events answered exactly by the compiled
    /// d-DNNF backend (or trivially) — zero samples drawn.
    pub exact_compiled_answers: u64,
    /// Approximate-confidence events answered by Karp–Luby sampling.
    pub sampled_answers: u64,
    /// Sampled events served from the shared block scheduler's tally
    /// instead of drawing fresh blocks (shared-sampling engines only).
    pub shared_block_hits: u64,
}

/// One evaluated (sub)query result.
#[derive(Clone, Debug)]
pub struct EvaluatedRelation {
    /// The result rows.
    pub relation: URelation,
    /// The paper's completeness flag `c` for the result.
    pub complete: bool,
    /// Per-tuple membership error bounds (missing tuples have error 0);
    /// non-zero only below/at approximate selections.
    pub errors: BTreeMap<Tuple, f64>,
}

impl EvaluatedRelation {
    /// The error bound recorded for a tuple (0 if none).
    pub fn error_of(&self, t: &Tuple) -> f64 {
        self.errors.get(t).copied().unwrap_or(0.0)
    }

    /// The largest per-tuple error bound in the result.
    pub fn max_error(&self) -> f64 {
        self.errors.values().copied().fold(0.0, f64::max)
    }
}

/// The outcome of evaluating a query.
#[derive(Clone, Debug)]
pub struct EvalOutput {
    /// The result relation.
    pub result: EvaluatedRelation,
    /// The database state after evaluation (includes the random variables
    /// introduced by `repair-key`).
    pub database: UDatabase,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

/// The U-relational query engine.
#[derive(Clone, Debug, Default)]
pub struct UEngine {
    config: EvalConfig,
}

impl UEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EvalConfig) -> Self {
        UEngine { config }
    }

    /// Evaluates a UA query: lowers it into a validated logical plan (the
    /// database supplies the catalog), then executes the physical pipeline.
    pub fn evaluate<R: Rng + ?Sized>(
        &self,
        database: &UDatabase,
        query: &Query,
        rng: &mut R,
    ) -> Result<EvalOutput> {
        let catalog = crate::adaptive_query::catalog_of(database)?;
        let plan = LogicalPlan::lower_validated(query, &catalog)?;
        self.evaluate_plan(database, &plan, rng)
    }

    /// Evaluates an already lowered logical plan.  Callers that re-evaluate
    /// the same query under different configurations (e.g. the Theorem 6.7
    /// adaptive driver) lower once and call this repeatedly.
    pub fn evaluate_plan<R: Rng + ?Sized>(
        &self,
        database: &UDatabase,
        plan: &LogicalPlan,
        rng: &mut R,
    ) -> Result<EvalOutput> {
        self.run_plan(database, plan, rng, false)
    }

    /// Evaluates a plan on the single-threaded, single-batch reference
    /// schedule ([`PhysicalPlan::execute_sequential`]).  The sharded
    /// executor used by [`evaluate_plan`](UEngine::evaluate_plan) is
    /// property-tested to produce bit-identical results; this entry point is
    /// the differential baseline.
    pub fn evaluate_plan_sequential<R: Rng + ?Sized>(
        &self,
        database: &UDatabase,
        plan: &LogicalPlan,
        rng: &mut R,
    ) -> Result<EvalOutput> {
        self.run_plan(database, plan, rng, true)
    }

    fn run_plan<R: Rng + ?Sized>(
        &self,
        database: &UDatabase,
        plan: &LogicalPlan,
        rng: &mut R,
        sequential: bool,
    ) -> Result<EvalOutput> {
        let physical = PhysicalPlan::lower(plan, self.config)?;
        // `&mut R` implements `RngCore` and is `Sized`, so it coerces to the
        // trait object the operator pipeline consumes.
        let mut rng_ref: &mut R = rng;
        let dyn_rng: &mut dyn RngCore = &mut rng_ref;
        let mut ctx = ExecContext {
            config: self.config,
            database: database.clone(),
            stats: EvalStats::default(),
            var_counter: 0,
            rng: dyn_rng,
            spaces: SpaceCache::new(),
            deadline: None,
            sampler: None,
        };
        let result = if sequential {
            physical.execute_sequential(&mut ctx)?
        } else {
            physical.execute(&mut ctx)?
        };
        Ok(EvalOutput {
            result,
            database: ctx.database,
            stats: ctx.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shards_track_available_parallelism() {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(EvalConfig::default().shards, hw.clamp(2, 8));
    }

    #[test]
    fn explicit_shard_overrides_beat_the_default() {
        assert_eq!(EvalConfig::default().with_shards(1).shards, 1);
        assert_eq!(EvalConfig::default().with_shards(17).shards, 17);
        let direct = EvalConfig {
            shards: 3,
            ..EvalConfig::default()
        };
        assert_eq!(direct.shards, 3);
    }

    #[test]
    fn spill_budget_defaults_to_resident() {
        assert_eq!(EvalConfig::default().spill_budget_bytes, 0);
        assert_eq!(
            EvalConfig::exact()
                .with_spill_budget_bytes(4096)
                .spill_budget_bytes,
            4096
        );
    }
}
