//! U-relations: representation relations `U_R(D, A⃗)` pairing a condition
//! with a data tuple.

use crate::columnar::ColumnarChunk;
use crate::condition::Condition;
use crate::error::Result;
use crate::wtable::WTable;
use pdb::{Relation, Schema, Tuple, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Rough in-memory footprint of one value: a fixed 16-byte inline cost plus
/// any heap payload (string bytes).  Deliberately coarse — the spill tier
/// needs a *stable, deterministic* size proxy, not an allocator census.
fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Str(s) => 16 + s.len(),
        _ => 16,
    }
}

/// One row `⟨f, t⟩` of a U-relation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct URow {
    /// The condition `f` (the `D` columns).
    pub condition: Condition,
    /// The data tuple `t` (the `A⃗` columns).
    pub tuple: Tuple,
}

impl URow {
    /// Deterministic approximate in-memory size of the row in bytes: a fixed
    /// per-row overhead plus per-value costs for the condition pairs and the
    /// data tuple.  This is the unit the byte-budget
    /// [`partition`](URelation::partition) and the engine's spill tier plan
    /// against, so wide (e.g. long-string) rows weigh more than narrow ones.
    pub fn approx_bytes(&self) -> usize {
        let cond: usize = self
            .condition
            .iter()
            .map(|(var, value)| 32 + var.name().len() + value_bytes(value))
            .sum();
        let data: usize = self.tuple.values().map(value_bytes).sum();
        48 + cond + data
    }
}

/// A U-relation: a set of condition/tuple rows over a fixed data schema.
///
/// Tuple `t` is in relation `R` of possible world `f*` iff some row
/// `⟨f, t⟩` has `f` consistent with `f*`.  A classical complete relation is
/// the special case where every condition is empty.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct URelation {
    schema: Schema,
    rows: BTreeSet<URow>,
}

impl URelation {
    /// Creates an empty U-relation with the given data schema.
    pub fn empty(schema: Schema) -> Self {
        URelation {
            schema,
            rows: BTreeSet::new(),
        }
    }

    /// Creates a U-relation representing a complete relation: every tuple is
    /// paired with the empty condition.
    pub fn from_complete(rel: &Relation) -> Self {
        let mut u = URelation::empty(rel.schema().clone());
        for t in rel.iter() {
            u.rows.insert(URow {
                condition: Condition::always(),
                tuple: t.clone(),
            });
        }
        u
    }

    /// Assembles a relation from rows already in canonical set form (crate
    /// internal: columnar chunks rebuild row form through this).
    pub(crate) fn from_rows(schema: Schema, rows: BTreeSet<URow>) -> Self {
        URelation { schema, rows }
    }

    /// The data schema `A⃗` (conditions are not part of the schema).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Deterministic approximate in-memory size of all rows in bytes (the
    /// sum of [`URow::approx_bytes`]).  Partitioning and the engine's spill
    /// tier use this as the relation's weight.
    pub fn approx_bytes(&self) -> usize {
        self.rows.iter().map(URow::approx_bytes).sum()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the U-relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row; duplicate rows are kept only once.
    pub fn insert(&mut self, condition: Condition, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.schema.arity() {
            return Err(pdb::PdbError::ArityMismatch {
                expected: self.schema.arity(),
                actual: tuple.arity(),
            }
            .into());
        }
        Ok(self.rows.insert(URow { condition, tuple }))
    }

    /// Iterates over the rows in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &URow> {
        self.rows.iter()
    }

    /// True if the exact row (condition *and* tuple) is present.
    pub fn contains_row(&self, row: &URow) -> bool {
        self.rows.contains(row)
    }

    /// Removes the exact row, returning whether it was present.  Together
    /// with [`insert`](URelation::insert) this is the edit primitive of
    /// delta maintenance: incremental operators patch a previous output by
    /// removing and inserting individual rows.
    pub fn remove_row(&mut self, row: &URow) -> bool {
        self.rows.remove(row)
    }

    /// The relation with `deleted` rows removed and `inserted` rows added
    /// (set semantics; membership was validated by the caller).
    pub(crate) fn with_rows_edited(
        &self,
        inserted: &BTreeSet<URow>,
        deleted: &BTreeSet<URow>,
    ) -> URelation {
        let mut rows = self.rows.clone();
        for row in deleted {
            rows.remove(row);
        }
        rows.extend(inserted.iter().cloned());
        URelation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Derives the [`RelationDelta`](crate::RelationDelta) that turns `self`
    /// into `new`: one merge walk over both canonical row orders, yielding
    /// the exact inserted/deleted row sets.  The schemas must be equal (a
    /// content delta never changes the catalog).
    pub fn diff(&self, new: &URelation) -> Result<crate::RelationDelta> {
        if self.schema != new.schema {
            return Err(crate::UrelError::SchemaMismatch {
                relation: "<diff>".to_owned(),
                expected: self.schema.to_string(),
                actual: new.schema.to_string(),
            });
        }
        let deleted = self.rows.difference(&new.rows).cloned();
        let inserted = new.rows.difference(&self.rows).cloned();
        crate::RelationDelta::new(self, inserted, deleted)
    }

    /// `poss(R)`: the distinct data tuples appearing in any row.
    pub fn possible_tuples(&self) -> Relation {
        let mut rel = Relation::empty(self.schema.clone());
        for row in &self.rows {
            // Arity already validated on insert.
            let _ = rel.insert(row.tuple.clone());
        }
        rel
    }

    /// The event `F = {f | ⟨f, t⟩ ∈ U_R}` for tuple `t`: the set of
    /// conditions under which `t` appears.  This is the DNF whose probability
    /// is the tuple's confidence (Section 4).
    pub fn conditions_for(&self, t: &Tuple) -> Vec<Condition> {
        self.rows
            .iter()
            .filter(|r| &r.tuple == t)
            .map(|r| r.condition.clone())
            .collect()
    }

    /// Batch form of [`conditions_for`](URelation::conditions_for): every
    /// distinct data tuple paired with its DNF, in canonical tuple order (the
    /// same order as [`possible_tuples`](URelation::possible_tuples)).
    ///
    /// One pass over the rows instead of one pass per tuple, which is what
    /// the engine's batched confidence operators consume.
    pub fn tuple_events(&self) -> Vec<(Tuple, Vec<Condition>)> {
        let mut events: std::collections::BTreeMap<Tuple, Vec<Condition>> =
            std::collections::BTreeMap::new();
        for row in &self.rows {
            events
                .entry(row.tuple.clone())
                .or_default()
                .push(row.condition.clone());
        }
        events.into_iter().collect()
    }

    /// Splits the relation into at most `chunks` partitions of near-equal
    /// *byte* weight, preserving the canonical row order across the
    /// concatenation of the chunks.  Partitions are never empty; fewer than
    /// `chunks` are returned when the relation has fewer rows.  This is the
    /// unit of work of the engine's sharded operator execution: running a
    /// row-local operator per chunk and merging with
    /// [`absorb`](URelation::absorb) yields exactly the single-batch result,
    /// because rows live in a set.
    ///
    /// Sizing is by a per-chunk byte budget derived from
    /// [`approx_bytes`](URelation::approx_bytes) — `⌈total_bytes/chunks⌉` —
    /// rather than by row count, so a run of wide (long-string) rows cannot
    /// concentrate most of the relation's bytes into one chunk and blow the
    /// engine's spill budget.  Every chunk's weight is bounded by
    /// `⌈total_bytes/chunks⌉ + max_row_bytes`.
    pub fn partition(&self, chunks: usize) -> Vec<URelation> {
        let n = self.rows.len();
        let chunks = chunks.clamp(1, n.max(1));
        let budget = self.approx_bytes().div_ceil(chunks).max(1);
        let mut out = Vec::with_capacity(chunks);
        let mut current: BTreeSet<URow> = BTreeSet::new();
        let mut current_bytes = 0usize;
        for row in &self.rows {
            current_bytes += row.approx_bytes();
            current.insert(row.clone());
            // Flushing at ≥ budget keeps every earlier chunk at least the
            // average weight, which bounds whatever remains for the final
            // chunk by that same average.
            if current_bytes >= budget && out.len() + 1 < chunks {
                out.push(URelation {
                    schema: self.schema.clone(),
                    rows: std::mem::take(&mut current),
                });
                current_bytes = 0;
            }
        }
        if !current.is_empty() || out.is_empty() {
            out.push(URelation {
                schema: self.schema.clone(),
                rows: current,
            });
        }
        out
    }

    /// [`partition`](URelation::partition), transposed: the same byte-budget
    /// chunks handed to the executor in columnar form, so per-chunk kernels
    /// scan contiguous per-attribute arenas.  Concatenating
    /// `chunk.to_relation()` over the result reproduces `self` exactly.
    pub fn partition_columnar(&self, chunks: usize) -> Vec<ColumnarChunk> {
        self.partition(chunks)
            .iter()
            .map(ColumnarChunk::from_relation)
            .collect()
    }

    /// Merges another relation's rows into this one (set union; duplicate
    /// rows collapse).  The schemas must have equal arity — chunked operator
    /// execution always merges outputs of the same operator, which share a
    /// schema by construction.
    pub fn absorb(&mut self, other: URelation) {
        debug_assert_eq!(
            self.schema.arity(),
            other.schema.arity(),
            "absorb merges chunks of one operator output"
        );
        if self.rows.is_empty() {
            self.rows = other.rows;
        } else {
            self.rows.extend(other.rows);
        }
    }

    /// True if the U-relation is purely complete (all conditions empty).
    pub fn is_complete_representation(&self) -> bool {
        self.rows.iter().all(|r| r.condition.is_empty())
    }

    /// A 128-bit-plus-length content fingerprint of the relation
    /// ([`pdb::content_fingerprint`] over schema and rows).  Two relations
    /// with equal digests are content-equal up to hash collision (which
    /// would require agreement on both hashes *and* the size).  Serving
    /// layers use the digest as the relation's *identity* across updates: a
    /// replacement whose digest matches the stored one is a no-op and need
    /// not invalidate anything.
    pub fn content_digest(&self) -> (u64, u64, usize) {
        pdb::content_fingerprint(self, self.rows.len())
    }

    /// The set of random variables mentioned anywhere in the relation.
    pub fn mentioned_variables(&self) -> BTreeSet<crate::Var> {
        self.rows
            .iter()
            .flat_map(|r| r.condition.variables().cloned())
            .collect()
    }

    /// Checks that every condition only mentions declared variables/values.
    pub fn check_against(&self, w: &WTable) -> Result<()> {
        for row in &self.rows {
            row.condition.check_against(w)?;
        }
        Ok(())
    }

    /// Materialises the relation's content in the possible world described by
    /// the total assignment `world` (a condition defined on all variables the
    /// relation mentions).
    pub fn instantiate(&self, world: &Condition) -> Relation {
        let mut rel = Relation::empty(self.schema.clone());
        for row in &self.rows {
            if row.condition.satisfied_by(world) {
                let _ = rel.insert(row.tuple.clone());
            }
        }
        rel
    }
}

impl fmt::Display for URelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "U{} [D | data]", self.schema)?;
        for row in &self.rows {
            writeln!(f, "  {} | {}", row.condition, row.tuple)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;
    use pdb::{relation, schema, tuple, Value};

    fn ur_coin() -> URelation {
        // Figure 1(a): U_R with variable c.
        let mut u = URelation::empty(schema!["CoinType"]);
        u.insert(
            Condition::new([(Var::new("c"), Value::str("fair"))]).unwrap(),
            tuple!["fair"],
        )
        .unwrap();
        u.insert(
            Condition::new([(Var::new("c"), Value::str("2headed"))]).unwrap(),
            tuple!["2headed"],
        )
        .unwrap();
        u
    }

    #[test]
    fn from_complete_gives_empty_conditions() {
        let r = relation![schema!["A", "B"]; [1, 2], [3, 4]];
        let u = URelation::from_complete(&r);
        assert_eq!(u.len(), 2);
        assert!(u.is_complete_representation());
        assert_eq!(u.possible_tuples(), r);
        assert!(u.mentioned_variables().is_empty());
    }

    #[test]
    fn insert_validates_arity_and_dedups() {
        let mut u = URelation::empty(schema!["A"]);
        assert!(u.insert(Condition::always(), tuple![1, 2]).is_err());
        assert!(u.insert(Condition::always(), tuple![1]).unwrap());
        assert!(!u.insert(Condition::always(), tuple![1]).unwrap());
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn conditions_for_collects_the_dnf() {
        let u = ur_coin();
        let f = u.conditions_for(&tuple!["fair"]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].get(&Var::new("c")), Some(&Value::str("fair")));
        assert!(u.conditions_for(&tuple!["3sided"]).is_empty());
    }

    #[test]
    fn tuple_events_match_per_tuple_conditions() {
        let mut u = ur_coin();
        // A second row for `fair` under a different condition: its DNF has
        // two terms.
        u.insert(
            Condition::new([(Var::new("t1"), Value::str("H"))]).unwrap(),
            tuple!["fair"],
        )
        .unwrap();
        let batch = u.tuple_events();
        let poss = u.possible_tuples();
        assert_eq!(batch.len(), poss.len());
        for ((t, conditions), expected) in batch.iter().zip(poss.iter()) {
            assert_eq!(t, expected, "batch order must match possible_tuples");
            assert_eq!(conditions, &u.conditions_for(t));
        }
        assert!(batch.iter().any(|(_, c)| c.len() == 2));
    }

    #[test]
    fn partition_round_trips_through_absorb() {
        let mut u = URelation::empty(schema!["A"]);
        for i in 0..17 {
            u.insert(Condition::always(), tuple![i]).unwrap();
        }
        for chunks in [1usize, 2, 3, 4, 16, 17, 40] {
            let parts = u.partition(chunks);
            assert!(parts.len() <= chunks);
            assert!(parts.iter().all(|p| !p.is_empty()));
            assert_eq!(parts.iter().map(URelation::len).sum::<usize>(), u.len());
            let mut merged = URelation::empty(u.schema().clone());
            for p in parts {
                merged.absorb(p);
            }
            assert_eq!(merged, u);
        }
        // Empty relation: one empty chunk, so operators still see the schema.
        let empty = URelation::empty(schema!["A"]);
        let parts = empty.partition(4);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
    }

    #[test]
    fn partition_chunks_respect_a_byte_budget_not_a_row_count() {
        // 20 wide rows (~1 KiB of string payload each) that sort *first* in
        // canonical order, followed by 80 narrow rows.  Row-count chunking
        // would put every wide row into the first quarter; byte-budget
        // chunking must spread the bytes evenly.
        let mut u = URelation::empty(schema!["A"]);
        for i in 0..20 {
            u.insert(
                Condition::always(),
                tuple![format!("a{i:02}-{}", "w".repeat(1024))],
            )
            .unwrap();
        }
        for i in 0..80 {
            u.insert(Condition::always(), tuple![format!("z{i:02}")])
                .unwrap();
        }
        let chunks = 4;
        let total = u.approx_bytes();
        let max_row = u.iter().map(URow::approx_bytes).max().unwrap();
        let budget = total.div_ceil(chunks);
        let parts = u.partition(chunks);
        assert_eq!(parts.len(), chunks);
        for p in &parts {
            assert!(
                p.approx_bytes() <= budget + max_row,
                "chunk weighs {} bytes, budget {} + max row {}",
                p.approx_bytes(),
                budget,
                max_row
            );
        }
        // The old row-count sizing gave the first chunk > half the bytes.
        assert!(parts[0].approx_bytes() < total / 2);
        // And the partition is still a faithful split.
        assert_eq!(parts.iter().map(URelation::len).sum::<usize>(), u.len());
        let mut merged = URelation::empty(u.schema().clone());
        for p in parts {
            merged.absorb(p);
        }
        assert_eq!(merged, u);
    }

    #[test]
    fn partition_columnar_mirrors_partition() {
        let mut u = URelation::empty(schema!["A", "B"]);
        for i in 0..50i64 {
            u.insert(
                Condition::new([(Var::new("v"), Value::Int(i % 5))]).unwrap(),
                tuple![i, format!("s{i}")],
            )
            .unwrap();
        }
        for chunks in [1usize, 3, 7] {
            let rows = u.partition(chunks);
            let cols = u.partition_columnar(chunks);
            assert_eq!(rows.len(), cols.len());
            let mut merged = URelation::empty(u.schema().clone());
            for (r, c) in rows.iter().zip(&cols) {
                assert_eq!(&c.to_relation(), r);
                assert_eq!(c.content_digest(), r.content_digest());
                merged.absorb(c.to_relation());
            }
            assert_eq!(merged, u);
        }
    }

    #[test]
    fn instantiate_picks_rows_consistent_with_world() {
        let u = ur_coin();
        let world = Condition::new([(Var::new("c"), Value::str("fair"))]).unwrap();
        let r = u.instantiate(&world);
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple!["fair"]));
    }

    #[test]
    fn check_against_requires_declared_variables() {
        let u = ur_coin();
        let mut w = WTable::new();
        assert!(u.check_against(&w).is_err());
        w.add_variable(
            Var::new("c"),
            [
                (Value::str("fair"), 2.0 / 3.0),
                (Value::str("2headed"), 1.0 / 3.0),
            ],
        )
        .unwrap();
        assert!(u.check_against(&w).is_ok());
    }

    #[test]
    fn mentioned_variables() {
        let u = ur_coin();
        let vars = u.mentioned_variables();
        assert_eq!(vars.len(), 1);
        assert!(vars.contains(&Var::new("c")));
    }
}
