//! Vertical decomposition of U-relations (attribute-level uncertainty).
//!
//! Section 3 notes that "attribute-level uncertainty can be realized
//! succinctly by vertical decompositioning without additional cost" \[1\].
//! This module provides that facility: a U-relation over schema
//! `(K⃗, A₁, …, A_m)` can be split into `m` component U-relations
//! `(K⃗, A_i)`, each carrying only the conditions relevant to its attribute,
//! and re-assembled by a key-join that merges conditions.

use crate::condition::Condition;
use crate::error::{Result, UrelError};
use crate::urelation::URelation;
use pdb::{Schema, Tuple};

/// One vertical fragment: the key attributes plus a single payload attribute.
#[derive(Clone, Debug, PartialEq)]
pub struct Fragment {
    /// The payload attribute this fragment stores.
    pub attribute: String,
    /// Rows of schema `(K⃗, attribute)`.
    pub relation: URelation,
}

/// Splits `rel` into one fragment per non-key attribute.
///
/// Every fragment row keeps the full condition of its source row, so the
/// decomposition loses no uncertainty information.
pub fn decompose(rel: &URelation, key: &[&str]) -> Result<Vec<Fragment>> {
    let schema = rel.schema();
    let key_idx = schema.indices_of(key).map_err(UrelError::from)?;
    let payload: Vec<String> = schema.minus(key);
    if payload.is_empty() {
        return Err(UrelError::Invariant(
            "vertical decomposition needs at least one non-key attribute".into(),
        ));
    }

    let mut fragments = Vec::with_capacity(payload.len());
    for attr in &payload {
        let attr_idx = schema
            .index_of(attr)
            .expect("attribute comes from the schema");
        let mut frag_schema_names: Vec<String> = key.iter().map(|s| s.to_string()).collect();
        frag_schema_names.push(attr.clone());
        let frag_schema = Schema::new(frag_schema_names).map_err(UrelError::from)?;
        let mut frag = URelation::empty(frag_schema);
        for row in rel.iter() {
            let mut values: Vec<pdb::Value> =
                key_idx.iter().map(|&i| row.tuple[i].clone()).collect();
            values.push(row.tuple[attr_idx].clone());
            frag.insert(row.condition.clone(), Tuple::new(values))?;
        }
        fragments.push(Fragment {
            attribute: attr.clone(),
            relation: frag,
        });
    }
    Ok(fragments)
}

/// Re-assembles fragments produced by [`decompose`] by joining them on the
/// key attributes and merging (unioning) their conditions; rows whose
/// conditions conflict do not join, exactly as in the parsimonious product
/// translation.
pub fn recompose(fragments: &[Fragment], key: &[&str]) -> Result<URelation> {
    let first = fragments
        .first()
        .ok_or_else(|| UrelError::Invariant("cannot recompose an empty fragment list".into()))?;

    // Output schema: key attributes then each fragment's payload attribute.
    let mut names: Vec<String> = key.iter().map(|s| s.to_string()).collect();
    for f in fragments {
        names.push(f.attribute.clone());
    }
    let out_schema = Schema::new(names).map_err(UrelError::from)?;

    let key_len = key.len();
    // Start from the first fragment's rows.
    let mut acc: Vec<(Condition, Vec<pdb::Value>)> = first
        .relation
        .iter()
        .map(|row| (row.condition.clone(), row.tuple.clone().into_values()))
        .collect();

    for frag in &fragments[1..] {
        let mut next = Vec::new();
        for (cond, values) in &acc {
            for row in frag.relation.iter() {
                let row_values = row.tuple.clone().into_values();
                // Key columns must match.
                if values[..key_len] != row_values[..key_len] {
                    continue;
                }
                let Some(merged) = cond.merge(&row.condition) else {
                    continue;
                };
                let mut combined = values.clone();
                combined.push(row_values[key_len].clone());
                next.push((merged, combined));
            }
        }
        acc = next;
    }

    let mut out = URelation::empty(out_schema);
    for (cond, values) in acc {
        out.insert(cond, Tuple::new(values))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;
    use pdb::{schema, tuple, Value};

    fn sensor_urel() -> URelation {
        // Sensor readings keyed by SensorId, with uncertain Temp and Hum.
        let mut u = URelation::empty(schema!["SensorId", "Temp", "Hum"]);
        let x1 = Condition::new([(Var::new("x1"), Value::Int(0))]).unwrap();
        let x2 = Condition::new([(Var::new("x1"), Value::Int(1))]).unwrap();
        u.insert(x1, tuple![1, 20.0, 0.4]).unwrap();
        u.insert(x2, tuple![1, 22.0, 0.5]).unwrap();
        u.insert(Condition::always(), tuple![2, 18.0, 0.6]).unwrap();
        u
    }

    #[test]
    fn decompose_produces_one_fragment_per_payload_attribute() {
        let u = sensor_urel();
        let frags = decompose(&u, &["SensorId"]).unwrap();
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].attribute, "Temp");
        assert_eq!(frags[1].attribute, "Hum");
        assert_eq!(frags[0].relation.len(), 3);
        assert_eq!(
            frags[0].relation.schema().attrs(),
            &["SensorId".to_string(), "Temp".to_string()]
        );
    }

    #[test]
    fn recompose_round_trips() {
        let u = sensor_urel();
        let frags = decompose(&u, &["SensorId"]).unwrap();
        let back = recompose(&frags, &["SensorId"]).unwrap();
        assert_eq!(back, u);
    }

    #[test]
    fn recompose_drops_conflicting_conditions() {
        // Fragments whose rows disagree on the variable assignment do not
        // join: sensor 1's Temp under x1=0 cannot pair with Hum under x1=1.
        let u = sensor_urel();
        let frags = decompose(&u, &["SensorId"]).unwrap();
        let back = recompose(&frags, &["SensorId"]).unwrap();
        // Only consistent combinations survive: 2 for sensor 1, 1 for sensor 2.
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn decompose_requires_a_payload() {
        let u = URelation::empty(schema!["K"]);
        assert!(decompose(&u, &["K"]).is_err());
        assert!(recompose(&[], &["K"]).is_err());
    }

    #[test]
    fn decompose_unknown_key_errors() {
        let u = sensor_urel();
        assert!(decompose(&u, &["Nope"]).is_err());
    }
}
