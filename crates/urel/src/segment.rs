//! A compact, deterministic byte codec for U-relational values
//! ("segments").
//!
//! This module is pure in-memory encode/decode: `put_*` functions append a
//! value's canonical little-endian encoding to a byte buffer, and
//! [`SegmentCursor`] decodes it back through the crate's *validated*
//! constructors ([`Condition::new`], [`WTable::add_variable`],
//! [`URelation::insert`]), so a decoded value is a well-formed value or the
//! decode fails with [`UrelError::Corrupt`].  Framing, content digests, and
//! file I/O are deliberately **not** here — they belong to the engine's
//! storage layer, which wraps these payloads in digest-verified segment
//! files for the spill tier and the checkpoint store.
//!
//! Encoding is canonical: the same value always encodes to the same bytes
//! (maps iterate in `BTreeMap` order, floats are stored as `to_bits` of the
//! already-normalised [`pdb::F64`]), so payload digests double as content
//! digests.
//!
//! Wire format (all integers little-endian):
//!
//! | item      | layout                                                    |
//! |-----------|-----------------------------------------------------------|
//! | value     | tag `u8` (0 null, 1 bool, 2 int, 3 float, 4 str) + payload|
//! | string    | `u32` byte length + UTF-8 bytes                           |
//! | tuple     | `u32` arity + values                                      |
//! | condition | `u32` pair count + (var name string, value)*              |
//! | row       | condition + tuple                                         |
//! | relation  | `u32` attr count + names, `u64` row count, rows           |
//! | w-table   | `u32` var count + (name, `u32` alt count, (value, f64)*)* |

use crate::condition::Condition;
use crate::error::{Result, UrelError};
use crate::urelation::{URelation, URow};
use crate::variable::Var;
use crate::wtable::WTable;
use pdb::{Schema, Tuple, Value};

fn corrupt(msg: impl Into<String>) -> UrelError {
    UrelError::Corrupt(msg.into())
}

fn len_u32(len: usize, what: &str) -> u32 {
    u32::try_from(len).unwrap_or_else(|_| panic!("{what} length {len} exceeds u32 range"))
}

/// Appends a raw byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a float as the little-endian bits of its IEEE-754 encoding.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, len_u32(s.len(), "string"));
    out.extend_from_slice(s.as_bytes());
}

/// Appends a tagged value.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Bool(b) => {
            put_u8(out, 1);
            put_u8(out, u8::from(*b));
        }
        Value::Int(i) => {
            put_u8(out, 2);
            put_u64(out, *i as u64);
        }
        Value::Float(x) => {
            put_u8(out, 3);
            put_f64(out, x.get());
        }
        Value::Str(s) => {
            put_u8(out, 4);
            put_str(out, s);
        }
    }
}

/// Appends an arity-prefixed tuple.
pub fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_u32(out, len_u32(t.arity(), "tuple"));
    for v in t.values() {
        put_value(out, v);
    }
}

/// Appends a condition as its sorted `(variable, value)` pairs.
pub fn put_condition(out: &mut Vec<u8>, c: &Condition) {
    put_u32(out, len_u32(c.len(), "condition"));
    for (var, value) in c.iter() {
        put_str(out, var.name());
        put_value(out, value);
    }
}

/// Appends one U-row (condition, then tuple).
pub fn put_row(out: &mut Vec<u8>, row: &URow) {
    put_condition(out, &row.condition);
    put_tuple(out, &row.tuple);
}

/// Appends a whole U-relation: schema header, row count, then the rows in
/// canonical order.
pub fn put_relation(out: &mut Vec<u8>, rel: &URelation) {
    put_u32(out, len_u32(rel.schema().arity(), "schema"));
    for attr in rel.schema().attrs() {
        put_str(out, attr);
    }
    put_u64(out, rel.len() as u64);
    for row in rel.iter() {
        put_row(out, row);
    }
}

/// Appends a W-table: variable count, then each variable's name and
/// distribution in `BTreeMap` order.
pub fn put_wtable(out: &mut Vec<u8>, w: &WTable) {
    let vars: Vec<_> = w.iter().collect();
    put_u32(out, len_u32(vars.len(), "w-table"));
    for (var, dist) in vars {
        put_str(out, var.name());
        put_u32(out, len_u32(dist.len(), "distribution"));
        for (value, p) in dist {
            put_value(out, value);
            put_f64(out, *p);
        }
    }
}

/// A bounds-checked decoding cursor over an encoded segment payload.
///
/// Every `take_*` mirrors the corresponding `put_*`; any truncation,
/// unknown tag, or constructor rejection surfaces as
/// [`UrelError::Corrupt`] rather than a panic or a silently wrong value.
#[derive(Debug)]
pub struct SegmentCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SegmentCursor<'a> {
    /// Starts decoding at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> SegmentCursor<'a> {
        SegmentCursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — decoders use this to reject
    /// trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Decodes a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Decodes a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Decodes a float from its IEEE-754 bits.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Decodes a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| corrupt("string is not valid UTF-8"))
    }

    /// Decodes a tagged value.
    pub fn take_value(&mut self) -> Result<Value> {
        match self.take_u8()? {
            0 => Ok(Value::Null),
            1 => match self.take_u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => Err(corrupt(format!("bool byte {b} is neither 0 nor 1"))),
            },
            2 => Ok(Value::Int(self.take_u64()? as i64)),
            3 => Ok(Value::float(self.take_f64()?)),
            4 => Ok(Value::Str(self.take_str()?)),
            t => Err(corrupt(format!("unknown value tag {t}"))),
        }
    }

    /// Decodes an arity-prefixed tuple.
    pub fn take_tuple(&mut self) -> Result<Tuple> {
        let arity = self.take_u32()? as usize;
        let mut values = Vec::with_capacity(arity.min(self.remaining()));
        for _ in 0..arity {
            values.push(self.take_value()?);
        }
        Ok(Tuple::new(values))
    }

    /// Decodes a condition through [`Condition::new`], so duplicate
    /// variables are rejected.
    pub fn take_condition(&mut self) -> Result<Condition> {
        let pairs = self.take_u32()? as usize;
        let mut assignments = Vec::with_capacity(pairs.min(self.remaining()));
        for _ in 0..pairs {
            let var = Var::new(self.take_str()?);
            let value = self.take_value()?;
            assignments.push((var, value));
        }
        Condition::new(assignments)
    }

    /// Decodes one U-row.
    pub fn take_row(&mut self) -> Result<URow> {
        let condition = self.take_condition()?;
        let tuple = self.take_tuple()?;
        Ok(URow { condition, tuple })
    }

    /// Decodes a relation's schema header and row count, leaving the cursor
    /// positioned at the first row — streaming consumers pair this with
    /// [`take_row`](SegmentCursor::take_row) to merge rows without
    /// materialising a second copy of the relation.
    pub fn take_relation_header(&mut self) -> Result<(Schema, u64)> {
        let arity = self.take_u32()? as usize;
        let mut attrs = Vec::with_capacity(arity.min(self.remaining()));
        for _ in 0..arity {
            attrs.push(self.take_str()?);
        }
        let schema = Schema::new(attrs).map_err(|e| corrupt(format!("bad schema: {e}")))?;
        let rows = self.take_u64()?;
        Ok((schema, rows))
    }

    /// Decodes a whole relation through [`URelation::insert`], so arity
    /// mismatches are rejected.
    pub fn take_relation(&mut self) -> Result<URelation> {
        let (schema, rows) = self.take_relation_header()?;
        let mut rel = URelation::empty(schema);
        for _ in 0..rows {
            let row = self.take_row()?;
            rel.insert(row.condition, row.tuple)?;
        }
        if rel.len() as u64 != rows {
            return Err(corrupt(format!(
                "relation header promised {rows} distinct rows, decoded {}",
                rel.len()
            )));
        }
        Ok(rel)
    }

    /// Decodes a W-table through [`WTable::add_variable`], so invalid
    /// distributions are rejected.
    pub fn take_wtable(&mut self) -> Result<WTable> {
        let vars = self.take_u32()? as usize;
        let mut w = WTable::new();
        for _ in 0..vars {
            let var = Var::new(self.take_str()?);
            let alts = self.take_u32()? as usize;
            let mut dist = Vec::with_capacity(alts.min(self.remaining()));
            for _ in 0..alts {
                let value = self.take_value()?;
                let p = self.take_f64()?;
                dist.push((value, p));
            }
            w.add_variable(var, dist)?;
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb::{schema, tuple};

    fn sample_relation() -> URelation {
        let mut u = URelation::empty(schema!["A", "B"]);
        for i in 0..12i64 {
            let cond = Condition::new([
                (Var::new(format!("x{}", i % 4)), Value::Int(i % 3)),
                (Var::new("shared"), Value::str("s")),
            ])
            .unwrap();
            u.insert(cond, tuple![i, format!("row-{i}")]).unwrap();
        }
        u.insert(Condition::always(), tuple![-1, "total"]).unwrap();
        u
    }

    fn sample_wtable() -> WTable {
        let mut w = WTable::new();
        w.add_variable(
            Var::new("x"),
            [(Value::str("h"), 0.5), (Value::str("t"), 0.5)],
        )
        .unwrap();
        w.add_variable(
            Var::new("y"),
            [
                (Value::Int(1), 0.25),
                (Value::Int(2), 0.25),
                (Value::float(0.5), 0.5),
            ],
        )
        .unwrap();
        w
    }

    #[test]
    fn values_round_trip_exactly() {
        let values = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::float(-0.0),
            Value::float(f64::MIN_POSITIVE),
            Value::float(std::f64::consts::PI),
            Value::str(""),
            Value::str("héllo 世界"),
        ];
        let mut buf = Vec::new();
        for v in &values {
            put_value(&mut buf, v);
        }
        let mut cur = SegmentCursor::new(&buf);
        for v in &values {
            assert_eq!(&cur.take_value().unwrap(), v);
        }
        assert!(cur.is_exhausted());
    }

    #[test]
    fn relation_round_trips_bit_identically() {
        let u = sample_relation();
        let mut buf = Vec::new();
        put_relation(&mut buf, &u);
        let mut cur = SegmentCursor::new(&buf);
        let back = cur.take_relation().unwrap();
        assert!(cur.is_exhausted());
        assert_eq!(back, u);
        assert_eq!(back.content_digest(), u.content_digest());

        let mut again = Vec::new();
        put_relation(&mut again, &back);
        assert_eq!(again, buf, "canonical encoding is deterministic");
    }

    #[test]
    fn wtable_round_trips() {
        let w = sample_wtable();
        let mut buf = Vec::new();
        put_wtable(&mut buf, &w);
        let mut cur = SegmentCursor::new(&buf);
        let back = cur.take_wtable().unwrap();
        assert!(cur.is_exhausted());
        assert_eq!(back, w);
    }

    #[test]
    fn streaming_header_plus_rows_matches_whole_relation_decode() {
        let u = sample_relation();
        let mut buf = Vec::new();
        put_relation(&mut buf, &u);
        let mut cur = SegmentCursor::new(&buf);
        let (schema, rows) = cur.take_relation_header().unwrap();
        let mut streamed = URelation::empty(schema);
        for _ in 0..rows {
            let row = cur.take_row().unwrap();
            streamed.insert(row.condition, row.tuple).unwrap();
        }
        assert!(cur.is_exhausted());
        assert_eq!(streamed, u);
    }

    #[test]
    fn truncation_is_rejected_at_every_prefix() {
        let u = sample_relation();
        let mut buf = Vec::new();
        put_relation(&mut buf, &u);
        for cut in 0..buf.len() {
            let mut cur = SegmentCursor::new(&buf[..cut]);
            let decoded = cur.take_relation();
            // A strict prefix must either fail or leave nothing decodable;
            // it can never silently produce the full relation.
            if let Ok(rel) = decoded {
                assert_ne!(rel, u, "prefix of {cut} bytes decoded the full relation");
            }
        }
    }

    #[test]
    fn malformed_payloads_are_classified_corrupt() {
        // Unknown value tag.
        let mut cur = SegmentCursor::new(&[9u8]);
        assert!(matches!(cur.take_value(), Err(UrelError::Corrupt(_))));
        // Bool byte out of range.
        let mut cur = SegmentCursor::new(&[1u8, 7]);
        assert!(matches!(cur.take_value(), Err(UrelError::Corrupt(_))));
        // Invalid UTF-8 in a string.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut cur = SegmentCursor::new(&buf);
        assert!(matches!(cur.take_str(), Err(UrelError::Corrupt(_))));
        // Truncated u64.
        let mut cur = SegmentCursor::new(&[1u8, 2, 3]);
        assert!(matches!(cur.take_u64(), Err(UrelError::Corrupt(_))));
    }

    #[test]
    fn decode_goes_through_validating_constructors() {
        // A condition that assigns the same variable twice is rejected.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        put_str(&mut buf, "x");
        put_value(&mut buf, &Value::Int(1));
        put_str(&mut buf, "x");
        put_value(&mut buf, &Value::Int(2));
        let mut cur = SegmentCursor::new(&buf);
        assert!(cur.take_condition().is_err());

        // A relation row whose arity disagrees with the schema is rejected.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1); // schema: one attribute
        put_str(&mut buf, "A");
        put_u64(&mut buf, 1); // one row
        put_u32(&mut buf, 0); // empty condition
        put_tuple(&mut buf, &tuple![1, 2]); // arity 2 ≠ 1
        let mut cur = SegmentCursor::new(&buf);
        assert!(cur.take_relation().is_err());
    }
}
