//! Relation deltas: insert/delete row sets against a known base content.
//!
//! A [`RelationDelta`] describes a content update to one [`URelation`] as
//! the exact set of rows it inserts and deletes, pinned to the base
//! relation's [`content_digest`](URelation::content_digest).  The digest
//! makes deltas *safe to ship*: applying a delta to any relation other than
//! the one it was derived against is rejected instead of silently producing
//! a wrong result — the property serving layers rely on when they patch
//! cached intermediate results in place rather than recomputing them.

use crate::error::{Result, UrelError};
use crate::urelation::{URelation, URow};
use std::collections::BTreeSet;
use std::fmt;

/// A content delta for one U-relation: the rows inserted and deleted
/// relative to a base relation identified by its content digest.
///
/// Invariants (enforced by every constructor): inserted and deleted row sets
/// are disjoint, every row matches the base schema's arity, deleted rows are
/// present in the base, and inserted rows are absent from it.  Under set
/// semantics this makes a delta *canonical* — `base − deleted + inserted`
/// is the unique relation the delta describes, and
/// [`magnitude`](RelationDelta::magnitude) is the true edit distance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationDelta {
    /// Content digest of the base relation the delta applies against.
    base: (u64, u64, usize),
    inserted: BTreeSet<URow>,
    deleted: BTreeSet<URow>,
}

impl RelationDelta {
    /// Builds a delta against `base` from explicit row sets, validating the
    /// canonical-form invariants: rows must match the base arity, deleted
    /// rows must exist in the base, and inserted rows must not.
    pub fn new(
        base: &URelation,
        inserted: impl IntoIterator<Item = URow>,
        deleted: impl IntoIterator<Item = URow>,
    ) -> Result<RelationDelta> {
        let inserted: BTreeSet<URow> = inserted.into_iter().collect();
        let deleted: BTreeSet<URow> = deleted.into_iter().collect();
        for row in inserted.iter().chain(deleted.iter()) {
            if row.tuple.arity() != base.schema().arity() {
                return Err(pdb::PdbError::ArityMismatch {
                    expected: base.schema().arity(),
                    actual: row.tuple.arity(),
                }
                .into());
            }
        }
        if let Some(row) = inserted.iter().find(|r| base.contains_row(r)) {
            return Err(UrelError::DeltaMismatch(format!(
                "inserted row `{} | {}` is already present in the base relation",
                row.condition, row.tuple
            )));
        }
        if let Some(row) = deleted.iter().find(|r| !base.contains_row(r)) {
            return Err(UrelError::DeltaMismatch(format!(
                "deleted row `{} | {}` is not present in the base relation",
                row.condition, row.tuple
            )));
        }
        Ok(RelationDelta {
            base: base.content_digest(),
            inserted,
            deleted,
        })
    }

    /// The content digest of the base relation the delta was derived
    /// against; [`apply_to`](RelationDelta::apply_to) refuses any other base.
    pub fn base_digest(&self) -> (u64, u64, usize) {
        self.base
    }

    /// The rows the delta inserts.
    pub fn inserted(&self) -> &BTreeSet<URow> {
        &self.inserted
    }

    /// The rows the delta deletes.
    pub fn deleted(&self) -> &BTreeSet<URow> {
        &self.deleted
    }

    /// Number of row edits (inserted + deleted): the delta's size, which
    /// serving layers compare against the base size to decide between
    /// patching caches in place and recomputing.
    pub fn magnitude(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// True if the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// The set of random variables mentioned by inserted rows (the only rows
    /// that can introduce conditions a catalog check has not seen yet).
    pub fn mentioned_variables(&self) -> BTreeSet<crate::Var> {
        self.inserted
            .iter()
            .flat_map(|r| r.condition.variables().cloned())
            .collect()
    }

    /// Applies the delta to `base`, producing the updated relation.
    ///
    /// Rejects a base whose content digest differs from the one the delta
    /// was built against — a stale or misrouted delta must fail loudly, not
    /// corrupt the target (this is what lets serving layers patch pooled
    /// intermediate results without re-deriving them from scratch).
    pub fn apply_to(&self, base: &URelation) -> Result<URelation> {
        if base.content_digest() != self.base {
            return Err(UrelError::DeltaMismatch(format!(
                "delta was derived against content {:?} but the base relation has content {:?}",
                self.base,
                base.content_digest()
            )));
        }
        // The canonical-form invariants were validated against this exact
        // content (digest equality), so the edit applies cleanly.
        Ok(base.with_rows_edited(&self.inserted, &self.deleted))
    }
}

impl fmt::Display for RelationDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Δ(+{} −{} rows against {:?})",
            self.inserted.len(),
            self.deleted.len(),
            self.base
        )?;
        for row in &self.inserted {
            writeln!(f, "  + {} | {}", row.condition, row.tuple)?;
        }
        for row in &self.deleted {
            writeln!(f, "  - {} | {}", row.condition, row.tuple)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Condition;
    use pdb::{relation, schema, tuple};

    fn base() -> URelation {
        URelation::from_complete(&relation![schema!["A"]; [1], [2], [3]])
    }

    fn row(v: i64) -> URow {
        URow {
            condition: Condition::always(),
            tuple: tuple![v],
        }
    }

    #[test]
    fn diff_round_trips_through_apply() {
        let old = base();
        let new = URelation::from_complete(&relation![schema!["A"]; [2], [3], [4], [5]]);
        let delta = old.diff(&new).unwrap();
        assert_eq!(delta.magnitude(), 3); // -1, +4, +5
        assert_eq!(delta.inserted().len(), 2);
        assert_eq!(delta.deleted().len(), 1);
        assert_eq!(delta.base_digest(), old.content_digest());
        assert_eq!(delta.apply_to(&old).unwrap(), new);
        assert!(format!("{delta}").contains("+2"));
    }

    #[test]
    fn empty_diff_is_empty() {
        let old = base();
        let delta = old.diff(&old.clone()).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.magnitude(), 0);
        assert_eq!(delta.apply_to(&old).unwrap(), old);
    }

    #[test]
    fn diff_requires_equal_schemas() {
        let old = base();
        let other = URelation::from_complete(&relation![schema!["B", "C"]; [1, 2]]);
        assert!(old.diff(&other).is_err());
    }

    #[test]
    fn apply_rejects_a_stale_base() {
        let old = base();
        let new = URelation::from_complete(&relation![schema!["A"]; [1]]);
        let delta = old.diff(&new).unwrap();
        // Applying against anything but the exact base content fails.
        assert!(matches!(
            delta.apply_to(&new),
            Err(UrelError::DeltaMismatch(_))
        ));
    }

    #[test]
    fn new_validates_canonical_form() {
        let b = base();
        // Arity mismatch.
        let bad = URow {
            condition: Condition::always(),
            tuple: tuple![1, 2],
        };
        assert!(RelationDelta::new(&b, [bad], []).is_err());
        // Inserting a row already present.
        assert!(RelationDelta::new(&b, [row(1)], []).is_err());
        // Deleting a row that is absent.
        assert!(RelationDelta::new(&b, [], [row(9)]).is_err());
        // A valid edit.
        let delta = RelationDelta::new(&b, [row(9)], [row(1)]).unwrap();
        let patched = delta.apply_to(&b).unwrap();
        assert!(patched.contains_row(&row(9)));
        assert!(!patched.contains_row(&row(1)));
        assert_eq!(patched.len(), 3);
    }

    #[test]
    fn mentioned_variables_cover_inserted_conditions() {
        let mut new = base();
        new.insert(
            Condition::new([(crate::Var::new("v"), pdb::Value::Int(0))]).unwrap(),
            tuple![7],
        )
        .unwrap();
        let delta = base().diff(&new).unwrap();
        assert!(delta.mentioned_variables().contains(&crate::Var::new("v")));
    }
}
