//! Discrete random variables used by U-relational databases.

use std::fmt;
use std::sync::Arc;

/// A named discrete random variable `X ∈ Var`.
///
/// Variables are introduced by `repair-key` (Section 3): the translation
/// creates one variable per key-group, named after the key values of that
/// group, e.g. `c` or `(fair, 1)` in Figure 1.  The name is stored behind an
/// [`Arc`] so conditions can clone variables cheaply.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

impl From<String> for Var {
    fn from(s: String) -> Self {
        Var::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn equality_is_by_name() {
        assert_eq!(Var::new("c"), Var::from("c"));
        assert_ne!(Var::new("c"), Var::new("d"));
        assert_eq!(Var::new("(fair, 1)").name(), "(fair, 1)");
    }

    #[test]
    fn ordering_and_display() {
        let mut s = BTreeSet::new();
        s.insert(Var::new("b"));
        s.insert(Var::new("a"));
        let names: Vec<&str> = s.iter().map(Var::name).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(Var::new("x").to_string(), "x");
    }

    #[test]
    fn clones_share_storage() {
        let v = Var::new("shared");
        let w = v.clone();
        assert!(Arc::ptr_eq(&v.0, &w.0));
    }
}
