//! Conditions: partial assignments `f : Var → Dom` attached to U-relation
//! rows (the `D` columns of Section 3).

use crate::error::{Result, UrelError};
use crate::variable::Var;
use crate::wtable::WTable;
use pdb::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A condition is a finite partial function from random variables to domain
/// values, represented as a sorted map.  A row `⟨f, t⟩` of a U-relation means
/// "tuple `t` is present in every world whose total assignment is consistent
/// with `f`".
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Condition {
    assignments: BTreeMap<Var, Value>,
}

impl Condition {
    /// The empty condition (true in every world); rows of complete relations
    /// carry it.
    pub fn always() -> Self {
        Condition::default()
    }

    /// Creates a condition from `(variable, value)` pairs; assigning two
    /// different values to the same variable is an error.
    pub fn new(pairs: impl IntoIterator<Item = (Var, Value)>) -> Result<Self> {
        let mut c = Condition::always();
        for (var, value) in pairs {
            c.assign(var, value)?;
        }
        Ok(c)
    }

    /// Adds the assignment `var ↦ value`.  Re-assigning the same value is a
    /// no-op; a conflicting value is an error.
    pub fn assign(&mut self, var: Var, value: Value) -> Result<()> {
        match self.assignments.get(&var) {
            Some(existing) if *existing != value => {
                Err(UrelError::InconsistentCondition(var.name().to_owned()))
            }
            _ => {
                self.assignments.insert(var, value);
                Ok(())
            }
        }
    }

    /// Number of variables the condition constrains.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True if this is the empty (always-true) condition.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The value assigned to `var`, if any.
    pub fn get(&self, var: &Var) -> Option<&Value> {
        self.assignments.get(var)
    }

    /// The variables mentioned by the condition, in order.
    pub fn variables(&self) -> impl Iterator<Item = &Var> {
        self.assignments.keys()
    }

    /// Iterates over `(variable, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Value)> {
        self.assignments.iter()
    }

    /// Two partial functions are consistent if they agree on every variable
    /// on which both are defined.
    pub fn consistent_with(&self, other: &Condition) -> bool {
        // Iterate over the smaller condition for speed.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .assignments
            .iter()
            .all(|(var, value)| large.get(var).is_none_or(|v| v == value))
    }

    /// The union `f ∪ g` of two consistent conditions, or `None` if they
    /// conflict.  This is the condition attached to product/join results in
    /// the parsimonious translation.
    pub fn merge(&self, other: &Condition) -> Option<Condition> {
        if !self.consistent_with(other) {
            return None;
        }
        let mut assignments = self.assignments.clone();
        for (var, value) in &other.assignments {
            assignments.insert(var.clone(), value.clone());
        }
        Some(Condition { assignments })
    }

    /// The weight `p_f = Π_{X ∈ dom(f)} Pr[X = f(X)]` (Equation 2).
    pub fn weight(&self, w: &WTable) -> Result<f64> {
        let mut p = 1.0;
        for (var, value) in &self.assignments {
            p *= w.probability(var, value)?;
        }
        Ok(p)
    }

    /// True if the total assignment `total` (given as a condition defined on
    /// all variables of interest) is in `ω(f)`, i.e. extends this condition.
    pub fn satisfied_by(&self, total: &Condition) -> bool {
        self.assignments
            .iter()
            .all(|(var, value)| total.get(var) == Some(value))
    }

    /// Checks that every variable/value mentioned by the condition is
    /// declared in the W-table.
    pub fn check_against(&self, w: &WTable) -> Result<()> {
        for (var, value) in &self.assignments {
            w.probability(var, value)?;
        }
        Ok(())
    }
}

impl FromIterator<(Var, Value)> for Condition {
    /// Builds a condition, panicking on conflicting assignments (use
    /// [`Condition::new`] for fallible construction).
    fn from_iter<T: IntoIterator<Item = (Var, Value)>>(iter: T) -> Self {
        Condition::new(iter).expect("conflicting assignments in Condition::from_iter")
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "{{}}");
        }
        write!(f, "{{")?;
        for (i, (var, value)) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{var} ↦ {value}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn assignment_and_conflicts() {
        let mut c = Condition::always();
        c.assign(v("x"), Value::Int(1)).unwrap();
        c.assign(v("x"), Value::Int(1)).unwrap(); // same value: fine
        assert!(c.assign(v("x"), Value::Int(2)).is_err());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&v("x")), Some(&Value::Int(1)));
        assert_eq!(c.get(&v("y")), None);
    }

    #[test]
    fn consistency_is_agreement_on_shared_variables() {
        let a = Condition::new([(v("x"), Value::Int(1)), (v("y"), Value::Int(2))]).unwrap();
        let b = Condition::new([(v("y"), Value::Int(2)), (v("z"), Value::Int(3))]).unwrap();
        let c = Condition::new([(v("y"), Value::Int(9))]).unwrap();
        assert!(a.consistent_with(&b));
        assert!(b.consistent_with(&a));
        assert!(!a.consistent_with(&c));
        assert!(a.consistent_with(&Condition::always()));
        assert!(Condition::always().consistent_with(&c));
    }

    #[test]
    fn merge_unions_assignments() {
        let a = Condition::new([(v("x"), Value::Int(1))]).unwrap();
        let b = Condition::new([(v("y"), Value::Int(2))]).unwrap();
        let m = a.merge(&b).unwrap();
        assert_eq!(m.len(), 2);
        let c = Condition::new([(v("x"), Value::Int(5))]).unwrap();
        assert!(a.merge(&c).is_none());
        assert_eq!(a.merge(&a).unwrap(), a);
    }

    #[test]
    fn weight_is_product_of_probabilities() {
        let mut w = WTable::new();
        w.add_variable(
            v("c"),
            [
                (Value::str("fair"), 2.0 / 3.0),
                (Value::str("2headed"), 1.0 / 3.0),
            ],
        )
        .unwrap();
        w.add_variable(v("t"), [(Value::str("H"), 0.5), (Value::str("T"), 0.5)])
            .unwrap();
        let c = Condition::new([(v("c"), Value::str("fair")), (v("t"), Value::str("H"))]).unwrap();
        assert!((c.weight(&w).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((Condition::always().weight(&w).unwrap() - 1.0).abs() < 1e-12);
        // Unknown value errors.
        let bad = Condition::new([(v("c"), Value::str("3headed"))]).unwrap();
        assert!(bad.weight(&w).is_err());
        assert!(bad.check_against(&w).is_err());
        assert!(c.check_against(&w).is_ok());
    }

    #[test]
    fn satisfied_by_total_assignments() {
        let total = Condition::new([(v("x"), Value::Int(1)), (v("y"), Value::Int(2))]).unwrap();
        let f = Condition::new([(v("x"), Value::Int(1))]).unwrap();
        let g = Condition::new([(v("x"), Value::Int(2))]).unwrap();
        let h = Condition::new([(v("z"), Value::Int(0))]).unwrap();
        assert!(f.satisfied_by(&total));
        assert!(!g.satisfied_by(&total));
        assert!(!h.satisfied_by(&total)); // z not defined by `total`
        assert!(Condition::always().satisfied_by(&total));
    }

    #[test]
    fn display() {
        assert_eq!(Condition::always().to_string(), "{}");
        let c = Condition::new([(v("c"), Value::str("fair"))]).unwrap();
        assert_eq!(c.to_string(), "{c ↦ fair}");
    }
}
