//! Conversions between the succinct U-relational representation and the
//! nonsuccinct possible-worlds representation (Theorem 3.1: U-relational
//! databases are a complete representation system).

use crate::condition::Condition;
use crate::error::{Result, UrelError};
use crate::udb::UDatabase;
use crate::urelation::URelation;
use crate::variable::Var;
use crate::wtable::WTable;
use pdb::{ProbabilisticDatabase, Value, World};

/// Default limit on the number of worlds [`decode`] is willing to
/// materialise.  Decoding is exponential in the number of variables; it is a
/// test/oracle facility, not a query-processing path.
pub const DEFAULT_DECODE_LIMIT: u128 = 1 << 20;

/// Enumerates every total assignment `f* : Var → Dom` of the W-table together
/// with its probability, in a deterministic order.
pub fn total_assignments(w: &WTable) -> Vec<(Condition, f64)> {
    let mut out = vec![(Condition::always(), 1.0)];
    for (var, dist) in w.iter() {
        let mut next = Vec::with_capacity(out.len() * dist.len());
        for (cond, p) in &out {
            for (value, q) in dist {
                let mut c = cond.clone();
                // A fresh variable can never conflict with the prefix.
                c.assign(var.clone(), value.clone())
                    .expect("fresh variable cannot conflict");
                next.push((c, p * q));
            }
        }
        out = next;
    }
    out
}

/// Decodes a U-relational database into the explicit set of possible worlds
/// it represents.
///
/// Worlds are produced per total assignment, so worlds with identical
/// relation contents are *not* merged (they are distinct `f*`); call
/// [`pdb::ProbabilisticDatabase::coalesce`] afterwards if a merged view is
/// wanted.  Fails if the W-table induces more than `limit` assignments.
pub fn decode(udb: &UDatabase, limit: u128) -> Result<ProbabilisticDatabase> {
    udb.validate()?;
    let n = udb.num_possible_worlds();
    if n > limit {
        return Err(UrelError::TooManyWorlds { worlds: n, limit });
    }
    let assignments = total_assignments(udb.wtable());
    let mut worlds = Vec::with_capacity(assignments.len());
    for (assignment, p) in assignments {
        let mut world = World::new(p).map_err(UrelError::from)?;
        for name in udb.relation_names() {
            let rel = udb.relation(&name)?;
            world.set_relation(name, rel.instantiate(&assignment));
        }
        worlds.push(world);
    }
    let complete = udb
        .relation_names()
        .into_iter()
        .map(|n| {
            let c = udb.is_complete(&n);
            (n, c)
        })
        .collect::<Vec<_>>();
    ProbabilisticDatabase::from_worlds(worlds, complete).map_err(UrelError::from)
}

/// Decodes with the [`DEFAULT_DECODE_LIMIT`].
pub fn decode_default(udb: &UDatabase) -> Result<ProbabilisticDatabase> {
    decode(udb, DEFAULT_DECODE_LIMIT)
}

/// Name of the world-selector variable introduced by [`encode`].
pub const WORLD_VAR: &str = "__world";

/// Encodes an explicit probabilistic database as a U-relational database
/// (the construction behind Theorem 3.1).
///
/// A single variable [`WORLD_VAR`] with one domain value per possible world
/// selects the world; each tuple of an uncertain relation in world `i` yields
/// a row conditioned on `__world ↦ i`, while complete relations keep empty
/// conditions.
pub fn encode(db: &ProbabilisticDatabase) -> Result<UDatabase> {
    db.validate()?;
    let mut udb = UDatabase::new();
    let world_var = Var::new(WORLD_VAR);

    // Only introduce the selector variable if there is actual uncertainty.
    if db.num_worlds() > 1 {
        let dist: Vec<(Value, f64)> = db
            .worlds()
            .iter()
            .enumerate()
            .map(|(i, w)| (Value::Int(i as i64), w.probability()))
            .collect();
        udb.add_variable(world_var.clone(), dist)?;
    }

    for name in db.relation_names() {
        let schema = db.schema_of(&name)?;
        if db.is_complete(&name) || db.num_worlds() == 1 {
            udb.add_complete_relation(&name, db.worlds()[0].relation(&name)?);
            continue;
        }
        let mut urel = URelation::empty(schema);
        for (i, w) in db.worlds().iter().enumerate() {
            let cond = Condition::new([(world_var.clone(), Value::Int(i as i64))])?;
            for t in w.relation(&name)?.iter() {
                urel.insert(cond.clone(), t.clone())?;
            }
        }
        udb.set_relation(name, urel, false);
    }
    udb.validate()?;
    Ok(udb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb::{relation, schema, tuple};

    fn coin_udb() -> UDatabase {
        let mut db = UDatabase::from_complete_relations([(
            "Coins",
            relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]],
        )]);
        db.add_variable(
            Var::new("c"),
            [
                (Value::str("fair"), 2.0 / 3.0),
                (Value::str("2headed"), 1.0 / 3.0),
            ],
        )
        .unwrap();
        let mut ur = URelation::empty(schema!["CoinType"]);
        ur.insert(
            Condition::new([(Var::new("c"), Value::str("fair"))]).unwrap(),
            tuple!["fair"],
        )
        .unwrap();
        ur.insert(
            Condition::new([(Var::new("c"), Value::str("2headed"))]).unwrap(),
            tuple!["2headed"],
        )
        .unwrap();
        db.set_relation("R", ur, false);
        db
    }

    #[test]
    fn total_assignments_enumerate_the_product_space() {
        let db = coin_udb();
        let assignments = total_assignments(db.wtable());
        assert_eq!(assignments.len(), 2);
        let total: f64 = assignments.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decode_produces_the_expected_worlds() {
        let db = coin_udb();
        let pdb = decode_default(&db).unwrap();
        assert_eq!(pdb.num_worlds(), 2);
        let p_fair = pdb.confidence("R", &tuple!["fair"]).unwrap();
        assert!((p_fair - 2.0 / 3.0).abs() < 1e-12);
        // Complete relation present in every world.
        assert_eq!(pdb.cert("Coins").unwrap().len(), 2);
    }

    #[test]
    fn decode_respects_the_world_limit() {
        let db = coin_udb();
        assert!(matches!(
            decode(&db, 1),
            Err(UrelError::TooManyWorlds { .. })
        ));
    }

    #[test]
    fn encode_then_decode_round_trips_confidence() {
        let db = coin_udb();
        let explicit = decode_default(&db).unwrap();
        let re_encoded = encode(&explicit).unwrap();
        let decoded_again = decode_default(&re_encoded).unwrap();
        for t in [tuple!["fair"], tuple!["2headed"]] {
            let a = explicit.confidence("R", &t).unwrap();
            let b = decoded_again.confidence("R", &t).unwrap();
            assert!((a - b).abs() < 1e-12);
        }
        // Complete relations survive as complete.
        assert!(re_encoded.is_complete("Coins"));
        assert!(!re_encoded.is_complete("R"));
    }

    #[test]
    fn encode_of_single_world_database_needs_no_variables() {
        let explicit = ProbabilisticDatabase::from_complete_relations([(
            "S",
            relation![schema!["A"]; [1], [2]],
        )])
        .unwrap();
        let udb = encode(&explicit).unwrap();
        assert_eq!(udb.num_possible_worlds(), 1);
        assert!(udb.wtable().is_empty());
        assert!(udb.is_complete("S"));
    }
}
