//! Error type for the U-relational representation system.

use std::fmt;

/// Errors raised by the `urel` crate.
#[derive(Clone, Debug, PartialEq)]
pub enum UrelError {
    /// A variable was used that is not declared in the W-table.
    UnknownVariable(String),
    /// A domain value was used that is not in the variable's domain.
    UnknownDomainValue {
        /// The variable.
        var: String,
        /// The offending domain value.
        value: String,
    },
    /// A variable's distribution is invalid (non-positive probabilities or a
    /// total different from 1).
    InvalidDistribution {
        /// The variable.
        var: String,
        /// Description of the problem.
        reason: String,
    },
    /// A condition assigned two different values to the same variable.
    InconsistentCondition(String),
    /// A relation name was referenced that does not exist.
    UnknownRelation(String),
    /// A content replacement tried to change a relation's schema.
    SchemaMismatch {
        /// The relation being replaced.
        relation: String,
        /// The schema on record.
        expected: String,
        /// The schema of the replacement.
        actual: String,
    },
    /// An operation required a complete representation.
    NotComplete(String),
    /// A relation delta did not match the base relation it was applied to
    /// (stale digest, or rows violating the delta's canonical form).
    DeltaMismatch(String),
    /// Error propagated from the possible-worlds layer.
    Pdb(pdb::PdbError),
    /// The decoded world set would be too large to materialise.
    TooManyWorlds {
        /// Number of total assignments the W-table induces.
        worlds: u128,
        /// The configured limit.
        limit: u128,
    },
    /// A serialized segment could not be decoded (truncated buffer, unknown
    /// tag, malformed payload): the bytes cannot be trusted.
    Corrupt(String),
    /// Generic invariant violation.
    Invariant(String),
}

impl fmt::Display for UrelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrelError::UnknownVariable(v) => write!(f, "unknown random variable `{v}`"),
            UrelError::UnknownDomainValue { var, value } => {
                write!(
                    f,
                    "value `{value}` is not in the domain of variable `{var}`"
                )
            }
            UrelError::InvalidDistribution { var, reason } => {
                write!(f, "invalid distribution for variable `{var}`: {reason}")
            }
            UrelError::InconsistentCondition(v) => {
                write!(f, "condition assigns two values to variable `{v}`")
            }
            UrelError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            UrelError::SchemaMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "replacement for relation `{relation}` changes its schema from {expected} \
                 to {actual}; schema evolution requires a full database swap"
            ),
            UrelError::NotComplete(m) => write!(f, "completeness violation: {m}"),
            UrelError::DeltaMismatch(m) => write!(f, "delta mismatch: {m}"),
            UrelError::Pdb(e) => write!(f, "{e}"),
            UrelError::TooManyWorlds { worlds, limit } => write!(
                f,
                "decoding would materialise {worlds} worlds, above the limit of {limit}"
            ),
            UrelError::Corrupt(m) => write!(f, "corrupt segment: {m}"),
            UrelError::Invariant(m) => write!(f, "invariant violation: {m}"),
        }
    }
}

impl std::error::Error for UrelError {}

impl From<pdb::PdbError> for UrelError {
    fn from(e: pdb::PdbError) -> Self {
        UrelError::Pdb(e)
    }
}

/// Result alias for the `urel` crate.
pub type Result<T> = std::result::Result<T, UrelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(UrelError::UnknownVariable("x".into())
            .to_string()
            .contains("`x`"));
        assert!(UrelError::TooManyWorlds {
            worlds: 1 << 40,
            limit: 1 << 20
        }
        .to_string()
        .contains("limit"));
        let e: UrelError = pdb::PdbError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains("`R`"));
    }
}
