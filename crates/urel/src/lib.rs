//! # U-relational databases
//!
//! The succinct and complete representation system for probabilistic
//! databases used throughout Koch (PODS 2008), Section 3: a finite set of
//! independent discrete random variables (the [`WTable`]) together with
//! representation relations ([`URelation`]) whose rows pair a data tuple with
//! a [`Condition`] — a partial assignment of variables to domain values.
//!
//! A tuple is in relation `R` of the possible world identified by a total
//! assignment `f*` iff some row `⟨f, t⟩ ∈ U_R` has `f` consistent with `f*`.
//!
//! The module [`convert`] implements both directions of Theorem 3.1
//! (completeness of the representation system): decoding a [`UDatabase`]
//! into an explicit [`pdb::ProbabilisticDatabase`] and encoding any explicit
//! database back into a U-relational one.  [`decompose`] provides the
//! vertical decomposition for attribute-level uncertainty mentioned in the
//! same section.
//!
//! ```
//! use urel::{Condition, UDatabase, URelation, Var};
//! use pdb::{schema, tuple, Value};
//!
//! // Figure 1(a): the picked coin is fair with probability 2/3.
//! let mut db = UDatabase::new();
//! db.add_variable(Var::new("c"), [
//!     (Value::str("fair"), 2.0 / 3.0),
//!     (Value::str("2headed"), 1.0 / 3.0),
//! ]).unwrap();
//! let mut ur = URelation::empty(schema!["CoinType"]);
//! ur.insert(Condition::new([(Var::new("c"), Value::str("fair"))]).unwrap(),
//!           tuple!["fair"]).unwrap();
//! db.set_relation("R", ur, false);
//! let event = db.event_for("R", &tuple!["fair"]).unwrap();
//! assert!((event[0].weight(db.wtable()).unwrap() - 2.0 / 3.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod columnar;
mod condition;
pub mod convert;
pub mod decompose;
mod delta;
mod error;
pub mod segment;
mod udb;
mod urelation;
mod variable;
mod wtable;

pub use columnar::ColumnarChunk;
pub use condition::Condition;
pub use convert::{
    decode, decode_default, encode, total_assignments, DEFAULT_DECODE_LIMIT, WORLD_VAR,
};
pub use delta::RelationDelta;
pub use error::{Result, UrelError};
pub use udb::UDatabase;
pub use urelation::{URelation, URow};
pub use variable::Var;
pub use wtable::{WTable, WTABLE_TOLERANCE};
