//! Columnar chunks: per-attribute value arenas over a slice of a
//! U-relation's canonical row order.
//!
//! The engine's sharded executor runs pure operators over partition chunks;
//! [`ColumnarChunk`] is the chunk representation it hands to those
//! operators.  Instead of a set of boxed `(condition, tuple)` rows, a chunk
//! stores one contiguous `Vec<Value>` arena *per attribute* plus a flattened
//! condition arena with per-row offsets, so a kernel scanning one attribute
//! (a selection predicate, a join-key probe) walks contiguous memory.
//!
//! The conversion is lossless in both directions and preserves the
//! canonical row order, so `to_relation ∘ from_relation` is the identity and
//! the chunk's [`content_digest`](ColumnarChunk::content_digest) equals the
//! source relation's — the determinism invariant "columnar ≡ row" holds by
//! construction and is pinned by the workspace's storage differential suite.

use crate::condition::Condition;
use crate::urelation::{URelation, URow};
use crate::variable::Var;
use pdb::{Schema, Tuple, Value};
use std::collections::BTreeSet;

/// A columnar view of one partition chunk: `columns[a][i]` is the value of
/// attribute `a` in the chunk's `i`-th row (canonical order), and row `i`'s
/// condition pairs live at `cond_offsets[i]..cond_offsets[i + 1]` of the
/// flattened condition arenas.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnarChunk {
    schema: Schema,
    len: usize,
    columns: Vec<Vec<Value>>,
    cond_vars: Vec<Var>,
    cond_values: Vec<Value>,
    cond_offsets: Vec<usize>,
    digest: (u64, u64, usize),
}

impl ColumnarChunk {
    /// Transposes a U-relation into columnar form, preserving the canonical
    /// row order and recording the source's content digest.
    pub fn from_relation(rel: &URelation) -> ColumnarChunk {
        let arity = rel.schema().arity();
        let mut columns: Vec<Vec<Value>> =
            (0..arity).map(|_| Vec::with_capacity(rel.len())).collect();
        let mut cond_vars = Vec::new();
        let mut cond_values = Vec::new();
        let mut cond_offsets = Vec::with_capacity(rel.len() + 1);
        cond_offsets.push(0);
        for row in rel.iter() {
            for (column, value) in columns.iter_mut().zip(row.tuple.values()) {
                column.push(value.clone());
            }
            for (var, value) in row.condition.iter() {
                cond_vars.push(var.clone());
                cond_values.push(value.clone());
            }
            cond_offsets.push(cond_vars.len());
        }
        ColumnarChunk {
            schema: rel.schema().clone(),
            len: rel.len(),
            columns,
            cond_vars,
            cond_values,
            cond_offsets,
            digest: rel.content_digest(),
        }
    }

    /// Rebuilds the row-form relation (the exact inverse of
    /// [`from_relation`](ColumnarChunk::from_relation)).
    pub fn to_relation(&self) -> URelation {
        let mut rows = BTreeSet::new();
        for i in 0..self.len {
            rows.insert(URow {
                condition: self.condition_at(i),
                tuple: self.tuple_at(i),
            });
        }
        URelation::from_rows(self.schema.clone(), rows)
    }

    /// The data schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The contiguous value arena of attribute `attr` (indexed by schema
    /// position); kernels probing one attribute scan this slice directly.
    pub fn column(&self, attr: usize) -> &[Value] {
        &self.columns[attr]
    }

    /// Materialises row `i`'s data tuple by gathering one value from each
    /// column arena.
    pub fn tuple_at(&self, i: usize) -> Tuple {
        self.columns.iter().map(|c| c[i].clone()).collect()
    }

    /// Row `i`'s condition pairs, in variable order, straight from the
    /// flattened condition arenas.
    pub fn condition_pairs(&self, i: usize) -> impl Iterator<Item = (&Var, &Value)> {
        let range = self.cond_offsets[i]..self.cond_offsets[i + 1];
        self.cond_vars[range.clone()]
            .iter()
            .zip(&self.cond_values[range])
    }

    /// Materialises row `i`'s condition.
    pub fn condition_at(&self, i: usize) -> Condition {
        Condition::new(
            self.condition_pairs(i)
                .map(|(var, value)| (var.clone(), value.clone())),
        )
        .expect("chunk conditions come from valid rows")
    }

    /// The content digest of the rows this chunk was built from; equal to
    /// [`URelation::content_digest`] of
    /// [`to_relation`](ColumnarChunk::to_relation) by construction.
    pub fn content_digest(&self) -> (u64, u64, usize) {
        self.digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb::{schema, tuple};

    fn mixed() -> URelation {
        let mut u = URelation::empty(schema!["A", "B", "C"]);
        for i in 0..20i64 {
            let cond = Condition::new([
                (Var::new(format!("x{}", i % 3)), Value::Int(i % 2)),
                (Var::new("y"), Value::str(format!("v{i}"))),
            ])
            .unwrap();
            u.insert(cond, tuple![i, format!("s{i}"), i as f64 / 4.0])
                .unwrap();
        }
        u.insert(Condition::always(), tuple![99, "plain", 0.5])
            .unwrap();
        u
    }

    #[test]
    fn round_trips_losslessly_and_digest_stable() {
        let u = mixed();
        let chunk = ColumnarChunk::from_relation(&u);
        assert_eq!(chunk.len(), u.len());
        assert_eq!(chunk.schema(), u.schema());
        let back = chunk.to_relation();
        assert_eq!(back, u);
        assert_eq!(chunk.content_digest(), u.content_digest());
        assert_eq!(back.content_digest(), u.content_digest());
    }

    #[test]
    fn columns_are_contiguous_per_attribute() {
        let u = mixed();
        let chunk = ColumnarChunk::from_relation(&u);
        let rows: Vec<&URow> = u.iter().collect();
        for (i, row) in rows.iter().enumerate() {
            for a in 0..u.schema().arity() {
                assert_eq!(chunk.column(a)[i], row.tuple[a]);
            }
            assert_eq!(chunk.tuple_at(i), row.tuple);
            assert_eq!(chunk.condition_at(i), row.condition);
            assert_eq!(chunk.condition_pairs(i).count(), row.condition.len());
        }
    }

    #[test]
    fn empty_chunk() {
        let u = URelation::empty(schema!["A"]);
        let chunk = ColumnarChunk::from_relation(&u);
        assert!(chunk.is_empty());
        assert_eq!(chunk.to_relation(), u);
        assert_eq!(chunk.content_digest(), u.content_digest());
    }
}
