//! U-relational databases: a W-table plus a set of named U-relations.

use crate::condition::Condition;
use crate::error::{Result, UrelError};
use crate::urelation::URelation;
use crate::variable::Var;
use crate::wtable::WTable;
use pdb::{Relation, Schema, Tuple};
use std::collections::BTreeMap;
use std::fmt;

/// A U-relational database `⟨U_{R₁}, …, U_{R_k}, W⟩` (Section 3).
///
/// This is the succinct, complete representation system over which the
/// `engine` crate evaluates UA queries by parsimonious translation.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct UDatabase {
    wtable: WTable,
    relations: BTreeMap<String, URelation>,
    complete: BTreeMap<String, bool>,
}

impl UDatabase {
    /// Creates an empty database (no variables, no relations).
    pub fn new() -> Self {
        UDatabase::default()
    }

    /// Creates a database whose relations are all complete.
    pub fn from_complete_relations(
        relations: impl IntoIterator<Item = (impl Into<String>, Relation)>,
    ) -> Self {
        let mut db = UDatabase::new();
        for (name, rel) in relations {
            db.add_complete_relation(name, &rel);
        }
        db
    }

    /// Read access to the W-table.
    pub fn wtable(&self) -> &WTable {
        &self.wtable
    }

    /// Mutable access to the W-table (used by `repair-key` translation to
    /// introduce variables).
    pub fn wtable_mut(&mut self) -> &mut WTable {
        &mut self.wtable
    }

    /// Adds a complete relation (empty conditions, marked complete).
    pub fn add_complete_relation(&mut self, name: impl Into<String>, rel: &Relation) {
        let name = name.into();
        self.relations
            .insert(name.clone(), URelation::from_complete(rel));
        self.complete.insert(name, true);
    }

    /// Adds (or replaces) an uncertain relation.
    pub fn set_relation(&mut self, name: impl Into<String>, rel: URelation, complete: bool) {
        let name = name.into();
        self.relations.insert(name.clone(), rel);
        self.complete.insert(name, complete);
    }

    /// Validates that `rel` may replace the *content* of relation `name`
    /// without changing the database's catalog: the relation must exist, the
    /// schema must be unchanged (schema evolution is a full-swap operation,
    /// not an update), a relation marked complete must stay representable as
    /// complete, and every condition must mention only declared variables
    /// and domain values.
    ///
    /// This is the read-only half of
    /// [`replace_relation`](UDatabase::replace_relation); callers applying
    /// several updates atomically check them all before applying any.
    pub fn check_replacement(&self, name: &str, rel: &URelation) -> Result<()> {
        let old = self.relation(name)?;
        if rel.schema() != old.schema() {
            return Err(UrelError::SchemaMismatch {
                relation: name.to_owned(),
                expected: old.schema().to_string(),
                actual: rel.schema().to_string(),
            });
        }
        if self.is_complete(name) && !rel.is_complete_representation() {
            return Err(UrelError::NotComplete(format!(
                "relation {name} is declared complete; its replacement must have \
                 empty conditions (use set_relation to change the declaration)"
            )));
        }
        rel.check_against(&self.wtable)
    }

    /// Replaces the content of relation `name` in place, keeping its
    /// catalog identity (schema and completeness declaration) fixed — the
    /// update primitive of serving layers, which invalidate caches by
    /// relation name and therefore need the catalog to survive updates.
    /// Validates via [`check_replacement`](UDatabase::check_replacement).
    pub fn replace_relation(&mut self, name: &str, rel: URelation) -> Result<()> {
        self.check_replacement(name, &rel)?;
        self.relations.insert(name.to_owned(), rel);
        Ok(())
    }

    /// Validates that `delta` may patch relation `name` and returns the
    /// patched content without applying it: the relation must exist, the
    /// delta's base digest must match the stored content (a stale delta is
    /// rejected loudly), and the patched relation must pass the same catalog
    /// checks as a full replacement — completeness preserved, conditions
    /// only over declared variables.
    ///
    /// This is the read-only half of
    /// [`apply_delta`](UDatabase::apply_delta); callers applying several
    /// deltas atomically check them all before applying any.
    ///
    /// Unlike [`check_replacement`](UDatabase::check_replacement), the
    /// catalog checks run over the *delta*, not the patched relation: a
    /// delta cannot change the schema (row arities are validated at
    /// construction against the base), deletions cannot break a
    /// completeness declaration, and only inserted rows can introduce
    /// unchecked conditions — so validation cost is proportional to the
    /// delta.
    pub fn check_delta(&self, name: &str, delta: &crate::RelationDelta) -> Result<URelation> {
        let old = self.relation(name)?;
        if self.is_complete(name) && delta.inserted().iter().any(|r| !r.condition.is_empty()) {
            return Err(UrelError::NotComplete(format!(
                "relation {name} is declared complete; delta-inserted rows must have \
                 empty conditions (use set_relation to change the declaration)"
            )));
        }
        for row in delta.inserted() {
            row.condition.check_against(&self.wtable)?;
        }
        delta.apply_to(old)
    }

    /// Patches the content of relation `name` by a
    /// [`RelationDelta`](crate::RelationDelta), keeping the catalog identity
    /// fixed — the incremental form of
    /// [`replace_relation`](UDatabase::replace_relation), validated by
    /// [`check_delta`](UDatabase::check_delta) and applied atomically
    /// (nothing changes on error).
    pub fn apply_delta(&mut self, name: &str, delta: &crate::RelationDelta) -> Result<()> {
        let new = self.check_delta(name, delta)?;
        self.relations.insert(name.to_owned(), new);
        Ok(())
    }

    /// Looks up a relation.
    pub fn relation(&self, name: &str) -> Result<&URelation> {
        self.relations
            .get(name)
            .ok_or_else(|| UrelError::UnknownRelation(name.to_owned()))
    }

    /// True if relation `name` exists.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// True if relation `name` is marked complete by definition.
    pub fn is_complete(&self, name: &str) -> bool {
        self.complete.get(name).copied().unwrap_or(false)
    }

    /// Names of all relations, in order.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Schema of relation `name`.
    pub fn schema_of(&self, name: &str) -> Result<Schema> {
        Ok(self.relation(name)?.schema().clone())
    }

    /// The event (DNF of conditions) under which tuple `t` belongs to
    /// relation `name`; its probability is the tuple's confidence.
    pub fn event_for(&self, name: &str, t: &Tuple) -> Result<Vec<Condition>> {
        Ok(self.relation(name)?.conditions_for(t))
    }

    /// Introduces a fresh variable, erroring if it already exists.
    pub fn add_variable(
        &mut self,
        var: Var,
        distribution: impl IntoIterator<Item = (pdb::Value, f64)>,
    ) -> Result<()> {
        self.wtable.add_variable(var, distribution)
    }

    /// Checks that every condition in every relation only mentions declared
    /// variables and domain values.
    pub fn validate(&self) -> Result<()> {
        for rel in self.relations.values() {
            rel.check_against(&self.wtable)?;
        }
        Ok(())
    }

    /// Number of possible worlds (total assignments) the W-table induces.
    pub fn num_possible_worlds(&self) -> u128 {
        self.wtable.num_total_assignments()
    }
}

impl fmt::Display for UDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            let marker = if self.is_complete(name) {
                " (complete)"
            } else {
                ""
            };
            writeln!(f, "U_{name}{marker}:\n{rel}")?;
        }
        write!(f, "{}", self.wtable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb::{relation, schema, tuple, Value};

    fn figure1a() -> UDatabase {
        let mut db = UDatabase::from_complete_relations([(
            "Coins",
            relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]],
        )]);
        db.add_variable(
            Var::new("c"),
            [
                (Value::str("fair"), 2.0 / 3.0),
                (Value::str("2headed"), 1.0 / 3.0),
            ],
        )
        .unwrap();
        let mut ur = URelation::empty(schema!["CoinType"]);
        ur.insert(
            Condition::new([(Var::new("c"), Value::str("fair"))]).unwrap(),
            tuple!["fair"],
        )
        .unwrap();
        ur.insert(
            Condition::new([(Var::new("c"), Value::str("2headed"))]).unwrap(),
            tuple!["2headed"],
        )
        .unwrap();
        db.set_relation("R", ur, false);
        db
    }

    #[test]
    fn builds_figure_1a() {
        let db = figure1a();
        db.validate().unwrap();
        assert!(db.is_complete("Coins"));
        assert!(!db.is_complete("R"));
        assert_eq!(db.num_possible_worlds(), 2);
        assert_eq!(
            db.relation_names(),
            vec!["Coins".to_string(), "R".to_string()]
        );
        let ev = db.event_for("R", &tuple!["fair"]).unwrap();
        assert_eq!(ev.len(), 1);
        let w = ev[0].weight(db.wtable()).unwrap();
        assert!((w - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn replace_relation_keeps_the_catalog_fixed() {
        let mut db = figure1a();
        // Content update of a complete relation: same schema, complete rows.
        let new_coins = URelation::from_complete(
            &relation![schema!["CoinType", "Count"]; ["weighted", 3], ["fair", 1]],
        );
        let before = db.relation("Coins").unwrap().content_digest();
        db.replace_relation("Coins", new_coins.clone()).unwrap();
        assert!(db.is_complete("Coins"));
        assert_ne!(db.relation("Coins").unwrap().content_digest(), before);
        assert_eq!(
            db.relation("Coins").unwrap().content_digest(),
            new_coins.content_digest()
        );

        // Content update of an uncertain relation referencing declared
        // variables.
        let mut new_r = URelation::empty(schema!["CoinType"]);
        new_r
            .insert(
                Condition::new([(Var::new("c"), Value::str("2headed"))]).unwrap(),
                tuple!["2headed"],
            )
            .unwrap();
        db.replace_relation("R", new_r).unwrap();
        assert!(!db.is_complete("R"));
        db.validate().unwrap();

        // Unknown relation.
        let any = URelation::from_complete(&relation![schema!["A"]; [1]]);
        assert!(matches!(
            db.replace_relation("Nope", any.clone()),
            Err(UrelError::UnknownRelation(_))
        ));
        // Schema change rejected.
        assert!(matches!(
            db.replace_relation("Coins", any),
            Err(UrelError::SchemaMismatch { .. })
        ));
        // A complete relation must stay complete.
        let mut uncertain = URelation::empty(schema!["CoinType", "Count"]);
        uncertain
            .insert(
                Condition::new([(Var::new("c"), Value::str("fair"))]).unwrap(),
                tuple!["fair", 1],
            )
            .unwrap();
        assert!(matches!(
            db.replace_relation("Coins", uncertain),
            Err(UrelError::NotComplete(_))
        ));
        // Undeclared variables are rejected.
        let mut ghost = URelation::empty(schema!["CoinType"]);
        ghost
            .insert(
                Condition::new([(Var::new("ghost"), Value::Int(0))]).unwrap(),
                tuple!["?"],
            )
            .unwrap();
        assert!(db.replace_relation("R", ghost).is_err());
    }

    #[test]
    fn apply_delta_patches_content_with_catalog_validation() {
        let mut db = figure1a();
        let old = db.relation("Coins").unwrap().clone();
        let new_coins = URelation::from_complete(
            &relation![schema!["CoinType", "Count"]; ["fair", 2], ["weighted", 3]],
        );
        let delta = old.diff(&new_coins).unwrap();
        // Check-only leaves the database untouched.
        assert_eq!(db.check_delta("Coins", &delta).unwrap(), new_coins);
        assert_eq!(db.relation("Coins").unwrap(), &old);
        db.apply_delta("Coins", &delta).unwrap();
        assert_eq!(db.relation("Coins").unwrap(), &new_coins);
        assert!(db.is_complete("Coins"));

        // The same delta is now stale: its base digest no longer matches.
        assert!(matches!(
            db.apply_delta("Coins", &delta),
            Err(UrelError::DeltaMismatch(_))
        ));
        assert_eq!(
            db.relation("Coins").unwrap(),
            &new_coins,
            "atomic: unchanged on error"
        );

        // Unknown relation.
        assert!(db.apply_delta("Nope", &delta).is_err());

        // A delta breaking a complete relation's declaration is rejected.
        let base = db.relation("Coins").unwrap().clone();
        let mut uncertain = base.clone();
        uncertain
            .insert(
                Condition::new([(Var::new("c"), Value::str("fair"))]).unwrap(),
                tuple!["trick", 1],
            )
            .unwrap();
        let bad = base.diff(&uncertain).unwrap();
        assert!(matches!(
            db.apply_delta("Coins", &bad),
            Err(UrelError::NotComplete(_))
        ));

        // A delta inserting rows over undeclared variables is rejected.
        let base = db.relation("R").unwrap().clone();
        let mut ghost = base.clone();
        ghost
            .insert(
                Condition::new([(Var::new("ghost"), Value::Int(0))]).unwrap(),
                tuple!["?"],
            )
            .unwrap();
        let bad = base.diff(&ghost).unwrap();
        assert!(db.apply_delta("R", &bad).is_err());
        assert_eq!(db.relation("R").unwrap(), &base);
    }

    #[test]
    fn content_digests_identify_content() {
        let db = figure1a();
        let coins = db.relation("Coins").unwrap();
        assert_eq!(coins.content_digest(), coins.clone().content_digest());
        assert_ne!(
            coins.content_digest(),
            db.relation("R").unwrap().content_digest()
        );
    }

    #[test]
    fn unknown_relation_errors() {
        let db = figure1a();
        assert!(db.relation("Nope").is_err());
        assert!(db.schema_of("Nope").is_err());
        assert!(db.event_for("Nope", &tuple![1]).is_err());
        assert!(!db.has_relation("Nope"));
        assert!(db.has_relation("R"));
    }

    #[test]
    fn validate_catches_undeclared_variables() {
        let mut db = figure1a();
        let mut bad = URelation::empty(schema!["A"]);
        bad.insert(
            Condition::new([(Var::new("ghost"), Value::Int(1))]).unwrap(),
            tuple![1],
        )
        .unwrap();
        db.set_relation("Bad", bad, false);
        assert!(db.validate().is_err());
    }

    #[test]
    fn empty_database_is_valid() {
        let db = UDatabase::new();
        db.validate().unwrap();
        assert_eq!(db.num_possible_worlds(), 1);
        assert!(db.relation_names().is_empty());
    }
}
