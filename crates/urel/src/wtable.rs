//! The `W(Var, Dom, P)` table: distributions of the independent random
//! variables underlying a U-relational database.

use crate::error::{Result, UrelError};
use crate::variable::Var;
use pdb::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Numerical slack accepted when checking that a variable's probabilities sum
/// to 1.
pub const WTABLE_TOLERANCE: f64 = 1e-9;

/// The W-table: for each variable `X`, a finite domain `Dom_X` with
/// `Pr[X = x] > 0` for every `x ∈ Dom_X` and `Σ_x Pr[X = x] = 1`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct WTable {
    vars: BTreeMap<Var, Vec<(Value, f64)>>,
}

impl WTable {
    /// Creates an empty W-table (no random variables: a single possible
    /// world).
    pub fn new() -> Self {
        WTable::default()
    }

    /// Declares a variable with its distribution.
    ///
    /// Every probability must be strictly positive and the probabilities must
    /// sum to 1 (within [`WTABLE_TOLERANCE`]); domain values must be
    /// distinct.  Redeclaring an existing variable is an error.
    pub fn add_variable(
        &mut self,
        var: Var,
        distribution: impl IntoIterator<Item = (Value, f64)>,
    ) -> Result<()> {
        if self.vars.contains_key(&var) {
            return Err(UrelError::InvalidDistribution {
                var: var.name().to_owned(),
                reason: "variable already declared".to_owned(),
            });
        }
        let dist: Vec<(Value, f64)> = distribution.into_iter().collect();
        if dist.is_empty() {
            return Err(UrelError::InvalidDistribution {
                var: var.name().to_owned(),
                reason: "empty domain".to_owned(),
            });
        }
        let mut total = 0.0;
        for (i, (value, p)) in dist.iter().enumerate() {
            if !p.is_finite() || *p <= 0.0 {
                return Err(UrelError::InvalidDistribution {
                    var: var.name().to_owned(),
                    reason: format!("Pr[{var} = {value}] = {p} is not in (0, 1]"),
                });
            }
            if dist[..i].iter().any(|(v, _)| v == value) {
                return Err(UrelError::InvalidDistribution {
                    var: var.name().to_owned(),
                    reason: format!("duplicate domain value {value}"),
                });
            }
            total += p;
        }
        if (total - 1.0).abs() > WTABLE_TOLERANCE {
            return Err(UrelError::InvalidDistribution {
                var: var.name().to_owned(),
                reason: format!("probabilities sum to {total}, expected 1"),
            });
        }
        self.vars.insert(var, dist);
        Ok(())
    }

    /// Declares a Boolean variable that is `true` with probability `p` and
    /// `false` with probability `1 − p` (the tuple-independence pattern).
    pub fn add_bool_variable(&mut self, var: Var, p: f64) -> Result<()> {
        if !(p > 0.0 && p < 1.0) {
            return Err(UrelError::InvalidDistribution {
                var: var.name().to_owned(),
                reason: format!("Boolean probability {p} must be strictly between 0 and 1"),
            });
        }
        self.add_variable(var, [(Value::Bool(true), p), (Value::Bool(false), 1.0 - p)])
    }

    /// Number of declared variables.
    pub fn num_variables(&self) -> usize {
        self.vars.len()
    }

    /// True if no variables are declared.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// True if `var` is declared.
    pub fn contains(&self, var: &Var) -> bool {
        self.vars.contains_key(var)
    }

    /// The domain of `var`, in declaration order.
    pub fn domain(&self, var: &Var) -> Result<Vec<Value>> {
        Ok(self
            .distribution(var)?
            .iter()
            .map(|(v, _)| v.clone())
            .collect())
    }

    /// The full distribution of `var`.
    pub fn distribution(&self, var: &Var) -> Result<&[(Value, f64)]> {
        self.vars
            .get(var)
            .map(Vec::as_slice)
            .ok_or_else(|| UrelError::UnknownVariable(var.name().to_owned()))
    }

    /// `Pr[X = x]`; errors if the variable or value is unknown.
    pub fn probability(&self, var: &Var, value: &Value) -> Result<f64> {
        self.distribution(var)?
            .iter()
            .find(|(v, _)| v == value)
            .map(|(_, p)| *p)
            .ok_or_else(|| UrelError::UnknownDomainValue {
                var: var.name().to_owned(),
                value: value.to_string(),
            })
    }

    /// Iterates over `(variable, distribution)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &[(Value, f64)])> {
        self.vars.iter().map(|(v, d)| (v, d.as_slice()))
    }

    /// All declared variables, in order.
    pub fn variables(&self) -> Vec<Var> {
        self.vars.keys().cloned().collect()
    }

    /// Number of total assignments `f* : Var → Dom` this table induces
    /// (the number of possible worlds before coalescing), as a `u128` to
    /// avoid overflow on large tables.
    pub fn num_total_assignments(&self) -> u128 {
        self.vars.values().map(|d| d.len() as u128).product()
    }

    /// Merges another W-table into this one; shared variables must carry the
    /// identical distribution (they represent the same source of randomness).
    pub fn merge(&mut self, other: &WTable) -> Result<()> {
        for (var, dist) in &other.vars {
            match self.vars.get(var) {
                None => {
                    self.vars.insert(var.clone(), dist.clone());
                }
                Some(existing) if existing == dist => {}
                Some(_) => {
                    return Err(UrelError::InvalidDistribution {
                        var: var.name().to_owned(),
                        reason: "conflicting redeclaration while merging W-tables".to_owned(),
                    })
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for WTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "W(Var, Dom, P)")?;
        for (var, dist) in &self.vars {
            for (value, p) in dist {
                writeln!(f, "  {var}  {value}  {p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coin_wtable() -> WTable {
        // Figure 1(b): variable c with {fair: 2/3, 2headed: 1/3} and four
        // fair-coin toss variables with {H: .5, T: .5}.
        let mut w = WTable::new();
        w.add_variable(
            Var::new("c"),
            [
                (Value::str("fair"), 2.0 / 3.0),
                (Value::str("2headed"), 1.0 / 3.0),
            ],
        )
        .unwrap();
        for name in ["(fair,1)", "(fair,2)"] {
            w.add_variable(
                Var::new(name),
                [(Value::str("H"), 0.5), (Value::str("T"), 0.5)],
            )
            .unwrap();
        }
        w
    }

    #[test]
    fn declares_and_queries_variables() {
        let w = coin_wtable();
        assert_eq!(w.num_variables(), 3);
        assert!(w.contains(&Var::new("c")));
        assert!(!w.contains(&Var::new("d")));
        let p = w.probability(&Var::new("c"), &Value::str("fair")).unwrap();
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.domain(&Var::new("(fair,1)")).unwrap().len(), 2);
        assert_eq!(w.num_total_assignments(), 8);
    }

    #[test]
    fn rejects_invalid_distributions() {
        let mut w = WTable::new();
        assert!(w
            .add_variable(Var::new("x"), [(Value::Int(1), 0.5), (Value::Int(2), 0.4)])
            .is_err());
        assert!(w
            .add_variable(Var::new("x"), [(Value::Int(1), 0.0), (Value::Int(2), 1.0)])
            .is_err());
        assert!(w
            .add_variable(Var::new("x"), [(Value::Int(1), 0.5), (Value::Int(1), 0.5)])
            .is_err());
        assert!(w.add_variable(Var::new("x"), []).is_err());
        // valid, then redeclared
        assert!(w
            .add_variable(Var::new("x"), [(Value::Int(1), 1.0)])
            .is_ok());
        assert!(w
            .add_variable(Var::new("x"), [(Value::Int(1), 1.0)])
            .is_err());
    }

    #[test]
    fn bool_variable_helper() {
        let mut w = WTable::new();
        w.add_bool_variable(Var::new("t1"), 0.3).unwrap();
        let p = w.probability(&Var::new("t1"), &Value::Bool(false)).unwrap();
        assert!((p - 0.7).abs() < 1e-12);
        assert!(w.add_bool_variable(Var::new("t2"), 0.0).is_err());
        assert!(w.add_bool_variable(Var::new("t2"), 1.0).is_err());
    }

    #[test]
    fn unknown_lookups_error() {
        let w = coin_wtable();
        assert!(w.probability(&Var::new("zzz"), &Value::Int(1)).is_err());
        assert!(w
            .probability(&Var::new("c"), &Value::str("3headed"))
            .is_err());
        assert!(w.domain(&Var::new("zzz")).is_err());
    }

    #[test]
    fn merge_accepts_identical_and_rejects_conflicts() {
        let mut a = coin_wtable();
        let b = coin_wtable();
        a.merge(&b).unwrap();
        assert_eq!(a.num_variables(), 3);

        let mut c = WTable::new();
        c.add_variable(Var::new("c"), [(Value::str("fair"), 1.0)])
            .unwrap();
        assert!(a.merge(&c).is_err());

        let mut d = WTable::new();
        d.add_bool_variable(Var::new("new"), 0.1).unwrap();
        a.merge(&d).unwrap();
        assert_eq!(a.num_variables(), 4);
    }

    #[test]
    fn empty_table_has_one_assignment() {
        let w = WTable::new();
        assert!(w.is_empty());
        assert_eq!(w.num_total_assignments(), 1);
    }
}
