//! Property tests for the U-relational representation system: condition
//! algebra, instantiation semantics, vertical decomposition and the
//! Theorem 3.1 round trip on randomly generated databases.

use pdb::{Schema, Tuple, Value};
use proptest::prelude::*;
use urel::decompose::{decompose, recompose};
use urel::{decode_default, encode, Condition, UDatabase, URelation, Var, WTable};

/// A random W-table over `num_vars` variables with 2–3 alternatives each.
fn arb_wtable(num_vars: usize) -> impl Strategy<Value = WTable> {
    proptest::collection::vec(
        (2usize..4, proptest::collection::vec(1u32..10, 4)),
        num_vars..=num_vars,
    )
    .prop_map(|vars| {
        let mut w = WTable::new();
        for (i, (arity, weights)) in vars.into_iter().enumerate() {
            let total: u32 = weights.iter().take(arity).sum();
            let dist: Vec<(Value, f64)> = weights
                .iter()
                .take(arity)
                .enumerate()
                .map(|(j, &weight)| (Value::Int(j as i64), weight as f64 / total as f64))
                .collect();
            w.add_variable(Var::new(format!("x{i}")), dist).unwrap();
        }
        w
    })
}

/// A random condition over the variables of a 4-variable W-table.
fn arb_condition() -> impl Strategy<Value = Condition> {
    proptest::collection::btree_map(0usize..4, 0usize..2, 0..4).prop_map(|m| {
        Condition::new(
            m.into_iter()
                .map(|(v, a)| (Var::new(format!("x{v}")), Value::Int(a as i64))),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Merging conditions is commutative, idempotent and consistent with the
    /// consistency check.
    #[test]
    fn condition_merge_laws(a in arb_condition(), b in arb_condition()) {
        prop_assert_eq!(a.consistent_with(&b), b.consistent_with(&a));
        match (a.merge(&b), b.merge(&a)) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(&x, &y);
                prop_assert!(a.consistent_with(&b));
                // The merge extends both inputs.
                for (var, value) in a.iter() {
                    prop_assert_eq!(x.get(var), Some(value));
                }
                for (var, value) in b.iter() {
                    prop_assert_eq!(x.get(var), Some(value));
                }
            }
            (None, None) => prop_assert!(!a.consistent_with(&b)),
            _ => prop_assert!(false, "merge is not symmetric"),
        }
        prop_assert_eq!(a.merge(&a), Some(a.clone()));
        prop_assert_eq!(a.merge(&Condition::always()), Some(a.clone()));
    }

    /// Condition weights multiply over disjoint merges and lie in (0, 1].
    #[test]
    fn condition_weights(w in arb_wtable(4), a in arb_condition()) {
        if a.check_against(&w).is_err() {
            // The random condition may use an alternative index outside a
            // 2-alternative domain; skip those.
            return Ok(());
        }
        let weight = a.weight(&w).unwrap();
        prop_assert!(weight > 0.0 && weight <= 1.0 + 1e-12);
        prop_assert!((Condition::always().weight(&w).unwrap() - 1.0).abs() < 1e-12);
    }

    /// The Theorem 3.1 round trip (decode → encode → decode) preserves every
    /// tuple confidence of a randomly generated uncertain relation.
    #[test]
    fn encode_decode_round_trip(
        w in arb_wtable(3),
        rows in proptest::collection::vec((0usize..3, 0usize..2, 0i64..4), 1..6),
    ) {
        let mut db = UDatabase::new();
        *db.wtable_mut() = w;
        let schema = Schema::new(["Id", "A"]).unwrap();
        let mut rel = URelation::empty(schema);
        for (i, (var, alt, a)) in rows.into_iter().enumerate() {
            let var = Var::new(format!("x{var}"));
            let Ok(domain) = db.wtable().domain(&var) else { continue };
            let value = domain[alt % domain.len()].clone();
            let cond = Condition::new([(var, value)]).unwrap();
            rel.insert(cond, Tuple::new(vec![Value::Int(i as i64), Value::Int(a)])).unwrap();
        }
        db.set_relation("T", rel, false);
        prop_assume!(db.validate().is_ok());

        let explicit = decode_default(&db).unwrap();
        let re_encoded = encode(&explicit).unwrap();
        let decoded_again = decode_default(&re_encoded).unwrap();
        for t in explicit.poss("T").unwrap().iter() {
            let p1 = explicit.confidence("T", t).unwrap();
            let p2 = decoded_again.confidence("T", t).unwrap();
            prop_assert!((p1 - p2).abs() < 1e-9);
        }
    }

    /// Vertical decomposition followed by recomposition is the identity on
    /// relations with a key column.
    #[test]
    fn decompose_recompose_round_trip(
        rows in proptest::collection::vec((0i64..6, 0i64..4, 0i64..4, 0usize..3), 1..8),
    ) {
        let schema = Schema::new(["K", "X", "Y"]).unwrap();
        let mut rel = URelation::empty(schema);
        for (k, x, y, var) in rows {
            let cond = Condition::new([(Var::new(format!("v{var}")), Value::Int(0))]).unwrap();
            rel.insert(cond, Tuple::new(vec![Value::Int(k), Value::Int(x), Value::Int(y)]))
                .unwrap();
        }
        let fragments = decompose(&rel, &["K"]).unwrap();
        prop_assert_eq!(fragments.len(), 2);
        let back = recompose(&fragments, &["K"]).unwrap();
        // Every original row survives the round trip (recomposition may add
        // rows that combine fragments of different source rows with the same
        // key and consistent conditions — that is the expected semantics of
        // attribute-level decomposition — but it never loses information).
        for row in rel.iter() {
            prop_assert!(
                back.iter().any(|r| r == row),
                "row {} | {} lost in recomposition", row.condition, row.tuple
            );
        }
    }

    /// Instantiating a U-relation in a world is monotone in the condition
    /// structure: a row's tuple appears iff its condition is satisfied.
    #[test]
    fn instantiation_matches_satisfaction(
        world_bits in proptest::collection::vec(0usize..2, 4),
    ) {
        let mut rel = URelation::empty(Schema::new(["Id"]).unwrap());
        for i in 0..4usize {
            let cond = Condition::new([(Var::new(format!("x{i}")), Value::Int(0))]).unwrap();
            rel.insert(cond, Tuple::new(vec![Value::Int(i as i64)])).unwrap();
        }
        let world = Condition::new(
            world_bits
                .iter()
                .enumerate()
                .map(|(i, &b)| (Var::new(format!("x{i}")), Value::Int(b as i64))),
        )
        .unwrap();
        let instance = rel.instantiate(&world);
        for (i, &b) in world_bits.iter().enumerate() {
            let t = Tuple::new(vec![Value::Int(i as i64)]);
            prop_assert_eq!(instance.contains(&t), b == 0);
        }
    }
}
