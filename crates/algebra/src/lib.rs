//! # The Uncertainty Algebra (UA) query language
//!
//! The expressive compositional query language of Koch (PODS 2008),
//! Definition 2.1 plus the Section 6 additions:
//!
//! * the operations of relational algebra (σ, π, ×, ⋈, ∪, −, −c, ρ) applied
//!   in each possible world, with arithmetic allowed in conditions and in the
//!   arguments of π and ρ,
//! * `conf` and its approximate variant `conf_{ε,δ}`,
//! * the uncertainty-introducing `repair-key`,
//! * `poss` / `cert`, and
//! * the approximate selection `σ̂_{φ(conf[A⃗₁], …, conf[A⃗_k])}`.
//!
//! The crate provides the query AST ([`Query`]) with a fluent builder,
//! arithmetic [`Expr`]essions and Boolean [`Predicate`]s, static analysis
//! ([`validate`]: schema inference, completeness, positivity, the structural
//! parameters of Proposition 6.6), a textual [`parser`], and the logical
//! [`plan`]ner lowering queries into validated operator DAGs with per-node
//! ε/δ annotations — the representation every execution engine consumes.
//!
//! ```
//! use algebra::{parse_query, Query};
//!
//! let q = parse_query("project[CoinType](repairkey[ @ Count](Coins))").unwrap();
//! assert_eq!(q, Query::table("Coins").repair_key(&[], "Count").project(&["CoinType"]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod expr;
pub mod parser;
pub mod plan;
mod predicate;
mod query;
pub mod validate;

pub use error::{AlgebraError, Result};
pub use expr::Expr;
pub use parser::{parse_expr, parse_predicate, parse_query};
pub use plan::{
    subplan_digest, Accuracy, LogicalOp, LogicalPlan, NodeId, PlanCache, PlanNode, SubplanDigest,
};
pub use predicate::{CmpOp, Predicate};
pub use query::{ConfTerm, ProjItem, Query, DEFAULT_DELTA, DEFAULT_EPSILON0};
pub use validate::{
    check_conf_terms, is_complete, is_positive, output_schema, repair_key_below_approx_select,
    structural_params, Catalog, StructuralParams,
};
