//! Selection predicates: Boolean combinations of atomic comparisons over
//! arithmetic expressions (Section 2 permits negation even in positive UA).

use crate::error::Result;
use crate::expr::Expr;
use pdb::{Schema, Tuple, Value};
use std::fmt;

/// Comparison operators allowed in atomic conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The negated comparison (`¬(a < b)` is `a >= b`, …), used when pushing
    /// negations into atoms as in Section 5.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Applies the comparison to two values.  Numeric values compare
    /// numerically (so `2 = 2.0`); other values compare by equality only, and
    /// ordering comparisons on them use the total order of [`Value`].
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => match self {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            },
            _ => match self {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            },
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A selection predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Atomic comparison between two expressions.
    Cmp(Expr, CmpOp, Expr),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Atomic comparison helper.
    pub fn cmp(lhs: Expr, op: CmpOp, rhs: Expr) -> Predicate {
        Predicate::Cmp(lhs, op, rhs)
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Predicate {
        Predicate::cmp(lhs, CmpOp::Eq, rhs)
    }

    /// `lhs <= rhs`.
    pub fn le(lhs: Expr, rhs: Expr) -> Predicate {
        Predicate::cmp(lhs, CmpOp::Le, rhs)
    }

    /// `lhs >= rhs`.
    pub fn ge(lhs: Expr, rhs: Expr) -> Predicate {
        Predicate::cmp(lhs, CmpOp::Ge, rhs)
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Attribute names referenced anywhere in the predicate.
    pub fn attrs(&self) -> Vec<String> {
        fn collect(p: &Predicate, out: &mut Vec<String>) {
            match p {
                Predicate::True | Predicate::False => {}
                Predicate::Cmp(a, _, b) => {
                    for x in a.attrs().into_iter().chain(b.attrs()) {
                        if !out.contains(&x) {
                            out.push(x);
                        }
                    }
                }
                Predicate::And(a, b) | Predicate::Or(a, b) => {
                    collect(a, out);
                    collect(b, out);
                }
                Predicate::Not(a) => collect(a, out),
            }
        }
        let mut out = Vec::new();
        collect(self, &mut out);
        out
    }

    /// Checks that every referenced attribute exists in `schema`.
    pub fn check(&self, schema: &Schema) -> Result<()> {
        match self {
            Predicate::True | Predicate::False => Ok(()),
            Predicate::Cmp(a, _, b) => {
                a.check(schema)?;
                b.check(schema)
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.check(schema)?;
                b.check(schema)
            }
            Predicate::Not(a) => a.check(schema),
        }
    }

    /// Evaluates the predicate against a tuple.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::False => Ok(false),
            Predicate::Cmp(a, op, b) => {
                Ok(op.apply(&a.eval(schema, tuple)?, &b.eval(schema, tuple)?))
            }
            Predicate::And(a, b) => Ok(a.eval(schema, tuple)? && b.eval(schema, tuple)?),
            Predicate::Or(a, b) => Ok(a.eval(schema, tuple)? || b.eval(schema, tuple)?),
            Predicate::Not(a) => Ok(!a.eval(schema, tuple)?),
        }
    }

    /// Pushes negations down to the atoms (negation normal form), using
    /// De Morgan's laws and negated comparison operators, as prescribed at
    /// the start of the ε-composition procedure in Section 5.
    pub fn to_nnf(&self) -> Predicate {
        fn nnf(p: &Predicate, negated: bool) -> Predicate {
            match (p, negated) {
                (Predicate::True, false) | (Predicate::False, true) => Predicate::True,
                (Predicate::True, true) | (Predicate::False, false) => Predicate::False,
                (Predicate::Cmp(a, op, b), false) => Predicate::Cmp(a.clone(), *op, b.clone()),
                (Predicate::Cmp(a, op, b), true) => {
                    Predicate::Cmp(a.clone(), op.negate(), b.clone())
                }
                (Predicate::And(a, b), false) => nnf(a, false).and(nnf(b, false)),
                (Predicate::And(a, b), true) => nnf(a, true).or(nnf(b, true)),
                (Predicate::Or(a, b), false) => nnf(a, false).or(nnf(b, false)),
                (Predicate::Or(a, b), true) => nnf(a, true).and(nnf(b, true)),
                (Predicate::Not(a), _) => nnf(a, !negated),
            }
        }
        nnf(self, false)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            Predicate::And(a, b) => write!(f, "({a} and {b})"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
            Predicate::Not(a) => write!(f, "(not {a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb::{schema, tuple};

    fn env() -> (Schema, Tuple) {
        (schema!["Toss", "Face", "P"], tuple![1, "H", 0.25])
    }

    #[test]
    fn atomic_comparisons() {
        let (s, t) = env();
        let p = Predicate::eq(Expr::attr("Face"), Expr::konst("H"));
        assert!(p.eval(&s, &t).unwrap());
        let p = Predicate::cmp(Expr::attr("Toss"), CmpOp::Lt, Expr::konst(2));
        assert!(p.eval(&s, &t).unwrap());
        let p = Predicate::ge(Expr::attr("P"), Expr::konst(0.5));
        assert!(!p.eval(&s, &t).unwrap());
    }

    #[test]
    fn numeric_comparison_crosses_int_and_float() {
        let (s, t) = env();
        let p = Predicate::eq(Expr::attr("Toss"), Expr::konst(1.0));
        assert!(p.eval(&s, &t).unwrap());
    }

    #[test]
    fn boolean_combinations() {
        let (s, t) = env();
        let p = Predicate::eq(Expr::attr("Toss"), Expr::konst(1))
            .and(Predicate::eq(Expr::attr("Face"), Expr::konst("H")));
        assert!(p.eval(&s, &t).unwrap());
        let q = p.clone().not();
        assert!(!q.eval(&s, &t).unwrap());
        let r = q.or(Predicate::True);
        assert!(r.eval(&s, &t).unwrap());
        assert!(!Predicate::False.eval(&s, &t).unwrap());
    }

    #[test]
    fn nnf_pushes_negation_into_atoms() {
        let p = Predicate::cmp(Expr::attr("P"), CmpOp::Lt, Expr::konst(0.5))
            .and(Predicate::eq(Expr::attr("Face"), Expr::konst("H")))
            .not();
        let n = p.to_nnf();
        // ¬(A ∧ B) = ¬A ∨ ¬B with comparisons negated.
        assert_eq!(
            n,
            Predicate::cmp(Expr::attr("P"), CmpOp::Ge, Expr::konst(0.5)).or(Predicate::cmp(
                Expr::attr("Face"),
                CmpOp::Ne,
                Expr::konst("H")
            ))
        );
        // Double negation disappears.
        let d = Predicate::True.not().not().to_nnf();
        assert_eq!(d, Predicate::True);
        // NNF of a negated constant flips it.
        assert_eq!(Predicate::False.not().to_nnf(), Predicate::True);
        // Semantics preserved on sample data.
        let (s, t) = env();
        assert_eq!(p.eval(&s, &t).unwrap(), n.eval(&s, &t).unwrap());
    }

    #[test]
    fn attrs_and_check() {
        let p = Predicate::ge(Expr::attr("P1") / Expr::attr("P2"), Expr::konst(0.5));
        assert_eq!(p.attrs(), vec!["P1".to_string(), "P2".to_string()]);
        let s = schema!["P1", "P2"];
        assert!(p.check(&s).is_ok());
        assert!(p.check(&schema!["P1"]).is_err());
    }

    #[test]
    fn cmp_op_negation_table() {
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert_eq!(CmpOp::Gt.negate(), CmpOp::Le);
        assert_eq!(CmpOp::Ge.negate(), CmpOp::Lt);
        assert_eq!(CmpOp::Ne.negate(), CmpOp::Eq);
    }

    #[test]
    fn string_ordering_uses_value_order() {
        let s = schema!["A"];
        let t = tuple!["abc"];
        let p = Predicate::cmp(Expr::attr("A"), CmpOp::Lt, Expr::konst("abd"));
        assert!(p.eval(&s, &t).unwrap());
    }
}
