//! Static analysis of UA queries: schema inference, completeness (the `c`
//! function of Section 2), fragment membership, and the structural
//! parameters `k`, `d`, arity used by the error bound of Proposition 6.6.

use crate::error::{AlgebraError, Result};
use crate::query::{ConfTerm, Query};
use pdb::Schema;
use std::collections::BTreeMap;

/// A catalog: the schema and completeness flag of every base relation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Catalog {
    relations: BTreeMap<String, (Schema, bool)>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Declares a base relation.
    pub fn add(&mut self, name: impl Into<String>, schema: Schema, complete: bool) {
        self.relations.insert(name.into(), (schema, complete));
    }

    /// Schema of a base relation.
    pub fn schema(&self, name: &str) -> Result<&Schema> {
        self.relations
            .get(name)
            .map(|(s, _)| s)
            .ok_or_else(|| AlgebraError::UnknownRelation(name.to_owned()))
    }

    /// Completeness flag of a base relation.
    pub fn is_complete(&self, name: &str) -> Result<bool> {
        self.relations
            .get(name)
            .map(|(_, c)| *c)
            .ok_or_else(|| AlgebraError::UnknownRelation(name.to_owned()))
    }

    /// Names of the declared relations.
    pub fn names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }
}

/// Infers the output schema of a query and validates every attribute
/// reference along the way.
pub fn output_schema(query: &Query, catalog: &Catalog) -> Result<Schema> {
    match query {
        Query::Table(name) => Ok(catalog.schema(name)?.clone()),
        Query::Select { input, predicate } => {
            let s = output_schema(input, catalog)?;
            predicate.check(&s)?;
            Ok(s)
        }
        Query::Project { input, items } => {
            let s = output_schema(input, catalog)?;
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                item.expr.check(&s)?;
                names.push(item.name.clone());
            }
            Schema::new(names).map_err(Into::into)
        }
        Query::Extend { input, items } => {
            let s = output_schema(input, catalog)?;
            let mut names: Vec<String> = s.attrs().to_vec();
            for item in items {
                item.expr.check(&s)?;
                names.push(item.name.clone());
            }
            Schema::new(names).map_err(Into::into)
        }
        Query::Rename { input, from, to } => {
            let s = output_schema(input, catalog)?;
            s.rename(from, to).map_err(Into::into)
        }
        Query::Product { left, right } => {
            let l = output_schema(left, catalog)?;
            let r = output_schema(right, catalog)?;
            l.concat(&r, "rhs").map_err(Into::into)
        }
        Query::NaturalJoin { left, right } => {
            let l = output_schema(left, catalog)?;
            let r = output_schema(right, catalog)?;
            let mut names: Vec<String> = l.attrs().to_vec();
            for a in r.attrs() {
                if !l.contains(a) {
                    names.push(a.clone());
                }
            }
            Schema::new(names).map_err(Into::into)
        }
        Query::Union { left, right }
        | Query::Difference { left, right }
        | Query::DifferenceC { left, right } => {
            let l = output_schema(left, catalog)?;
            let r = output_schema(right, catalog)?;
            if l.arity() != r.arity() {
                return Err(AlgebraError::NotUnionCompatible(format!("{l} vs {r}")));
            }
            Ok(l)
        }
        Query::Conf { input, prob_attr }
        | Query::ApproxConf {
            input, prob_attr, ..
        } => {
            let s = output_schema(input, catalog)?;
            s.with_appended(prob_attr).map_err(Into::into)
        }
        Query::RepairKey { input, key, weight } => {
            let s = output_schema(input, catalog)?;
            for a in key {
                if !s.contains(a) {
                    return Err(AlgebraError::UnknownAttribute(a.clone()));
                }
            }
            if !s.contains(weight) {
                return Err(AlgebraError::UnknownAttribute(weight.clone()));
            }
            Ok(s)
        }
        Query::Poss { input } | Query::Cert { input } => output_schema(input, catalog),
        Query::ApproxSelect {
            input,
            terms,
            predicate,
            epsilon0,
            delta,
        } => {
            let s = output_schema(input, catalog)?;
            check_approx_params(*epsilon0, *delta)?;
            let mut placeholder_names: Vec<String> = Vec::with_capacity(terms.len());
            // Output schema: the union of the terms' projection attributes,
            // in order of first appearance (the natural join of the
            // conf(π_{A⃗_i}(R)) relations, with the probability placeholders
            // projected away).
            let mut out_attrs: Vec<String> = Vec::new();
            for term in terms {
                for a in &term.attrs {
                    if !s.contains(a) {
                        return Err(AlgebraError::UnknownAttribute(a.clone()));
                    }
                    if !out_attrs.contains(a) {
                        out_attrs.push(a.clone());
                    }
                }
                placeholder_names.push(term.name.clone());
            }
            // The predicate sees the term placeholders (only).
            let placeholder_schema = Schema::new(placeholder_names)?;
            predicate.check(&placeholder_schema)?;
            Schema::new(out_attrs).map_err(Into::into)
        }
    }
}

fn check_approx_params(epsilon0: f64, delta: f64) -> Result<()> {
    if !(epsilon0 > 0.0 && epsilon0 < 1.0) {
        return Err(AlgebraError::InvalidParameter(format!(
            "epsilon0 = {epsilon0} must be in (0, 1)"
        )));
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(AlgebraError::InvalidParameter(format!(
            "delta = {delta} must be in (0, 1)"
        )));
    }
    Ok(())
}

/// Computes the paper's completeness function `c` for the query result:
/// relational operations are complete iff all inputs are, `conf`/`poss`/
/// `cert` results are complete by definition, `repair-key` and `σ̂` results
/// are not.
pub fn is_complete(query: &Query, catalog: &Catalog) -> Result<bool> {
    Ok(match query {
        Query::Table(name) => catalog.is_complete(name)?,
        Query::Select { input, .. }
        | Query::Project { input, .. }
        | Query::Extend { input, .. }
        | Query::Rename { input, .. } => is_complete(input, catalog)?,
        Query::Product { left, right }
        | Query::NaturalJoin { left, right }
        | Query::Union { left, right }
        | Query::Difference { left, right }
        | Query::DifferenceC { left, right } => {
            is_complete(left, catalog)? && is_complete(right, catalog)?
        }
        Query::Conf { .. } | Query::ApproxConf { .. } | Query::Poss { .. } | Query::Cert { .. } => {
            true
        }
        Query::RepairKey { .. } | Query::ApproxSelect { .. } => false,
    })
}

/// True if the query is in *positive* UA: it contains no unrestricted
/// difference (the complete-input difference `−c` is allowed).
pub fn is_positive(query: &Query) -> bool {
    if matches!(query, Query::Difference { .. }) {
        return false;
    }
    query.children().iter().all(|c| is_positive(c))
}

/// Checks that a positive UA[σ̂] query only uses `repair-key` below every
/// approximate selection (footnote 3 of the paper: results apply to queries
/// that never use `repair-key` *above* a `σ̂`).
pub fn repair_key_below_approx_select(query: &Query) -> bool {
    fn contains_approx_select(q: &Query) -> bool {
        matches!(q, Query::ApproxSelect { .. })
            || q.children().iter().any(|c| contains_approx_select(c))
    }
    fn check(q: &Query) -> bool {
        if matches!(q, Query::RepairKey { .. }) && contains_approx_select(q) {
            return false;
        }
        q.children().iter().all(|c| check(c))
    }
    check(query)
}

/// Structural parameters of a query used by the error bound of
/// Proposition 6.6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StructuralParams {
    /// Nesting depth `d` of approximate selection operators.
    pub approx_select_depth: usize,
    /// Upper bound `k`: the maximum of (a) the arity of any subquery result
    /// and (b) the number of confidence terms in any single `σ̂`.
    pub k: usize,
    /// Number of `conf`/`conf_{ε,δ}` operators.
    pub conf_count: usize,
    /// Number of `repair-key` operators.
    pub repair_key_count: usize,
}

/// Computes the structural parameters of a query.
pub fn structural_params(query: &Query, catalog: &Catalog) -> Result<StructuralParams> {
    fn walk(q: &Query, catalog: &Catalog, params: &mut StructuralParams) -> Result<usize> {
        // Returns the σ̂-nesting depth of `q`.
        let arity = output_schema(q, catalog)?.arity();
        params.k = params.k.max(arity);
        let mut depth = 0usize;
        for c in q.children() {
            depth = depth.max(walk(c, catalog, params)?);
        }
        match q {
            Query::ApproxSelect { terms, .. } => {
                params.k = params.k.max(terms.len());
                depth += 1;
            }
            Query::Conf { .. } | Query::ApproxConf { .. } => params.conf_count += 1,
            Query::RepairKey { .. } => params.repair_key_count += 1,
            _ => {}
        }
        params.approx_select_depth = params.approx_select_depth.max(depth);
        Ok(depth)
    }
    let mut params = StructuralParams {
        approx_select_depth: 0,
        k: 0,
        conf_count: 0,
        repair_key_count: 0,
    };
    walk(query, catalog, &mut params)?;
    Ok(params)
}

/// Validates the placeholder names of a `σ̂`'s confidence terms: they must be
/// distinct and must not clash with the input schema.
pub fn check_conf_terms(terms: &[ConfTerm], input_schema: &Schema) -> Result<()> {
    for (i, t) in terms.iter().enumerate() {
        if terms[..i].iter().any(|u| u.name == t.name) {
            return Err(AlgebraError::Invariant(format!(
                "duplicate confidence-term placeholder `{}`",
                t.name
            )));
        }
        if input_schema.contains(&t.name) {
            return Err(AlgebraError::Invariant(format!(
                "confidence-term placeholder `{}` clashes with an input attribute",
                t.name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::predicate::{CmpOp, Predicate};
    use crate::query::ProjItem;
    use pdb::schema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add("Coins", schema!["CoinType", "Count"], true);
        c.add("Faces", schema!["CoinType", "Face", "FProb"], true);
        c.add("Tosses", schema!["Toss"], true);
        c
    }

    #[test]
    fn schema_inference_for_the_coin_pipeline() {
        let cat = catalog();
        let r = Query::table("Coins")
            .repair_key(&[], "Count")
            .project(&["CoinType"]);
        assert_eq!(output_schema(&r, &cat).unwrap(), schema!["CoinType"]);

        let s = Query::table("Faces")
            .product(Query::table("Tosses"))
            .repair_key(&["CoinType", "Toss"], "FProb")
            .project(&["CoinType", "Toss", "Face"]);
        assert_eq!(
            output_schema(&s, &cat).unwrap(),
            schema!["CoinType", "Toss", "Face"]
        );

        let u = r
            .conf("P")
            .rename("P", "P1")
            .natural_join(Query::table("Coins").conf("P").rename("P", "P2"))
            .project_items(vec![
                ProjItem::attr("CoinType"),
                ProjItem::computed(Expr::attr("P1") / Expr::attr("P2"), "P"),
            ]);
        assert_eq!(output_schema(&u, &cat).unwrap(), schema!["CoinType", "P"]);
    }

    #[test]
    fn unknown_references_are_caught() {
        let cat = catalog();
        assert!(output_schema(&Query::table("Nope"), &cat).is_err());
        let q = Query::table("Coins").project(&["Missing"]);
        assert!(output_schema(&q, &cat).is_err());
        let q = Query::table("Coins").select(Predicate::eq(Expr::attr("Missing"), Expr::konst(1)));
        assert!(output_schema(&q, &cat).is_err());
        let q = Query::table("Coins").repair_key(&["Missing"], "Count");
        assert!(output_schema(&q, &cat).is_err());
        let q = Query::table("Coins").repair_key(&[], "Missing");
        assert!(output_schema(&q, &cat).is_err());
        let q = Query::table("Coins").union(Query::table("Tosses"));
        assert!(matches!(
            output_schema(&q, &cat),
            Err(AlgebraError::NotUnionCompatible(_))
        ));
    }

    #[test]
    fn approx_select_validates_terms_and_parameters() {
        let cat = catalog();
        let pred = Predicate::cmp(Expr::attr("P1"), CmpOp::Ge, Expr::konst(0.5));
        let good = Query::table("Coins").approx_select(
            vec![ConfTerm::new("P1", ["CoinType"])],
            pred.clone(),
            0.01,
            0.05,
        );
        assert_eq!(output_schema(&good, &cat).unwrap(), schema!["CoinType"]);
        let bad_attr = Query::table("Coins").approx_select(
            vec![ConfTerm::new("P1", ["Missing"])],
            pred.clone(),
            0.01,
            0.05,
        );
        assert!(output_schema(&bad_attr, &cat).is_err());
        let bad_pred = Query::table("Coins").approx_select(
            vec![ConfTerm::new("P1", ["CoinType"])],
            Predicate::cmp(Expr::attr("P9"), CmpOp::Ge, Expr::konst(0.5)),
            0.01,
            0.05,
        );
        assert!(output_schema(&bad_pred, &cat).is_err());
        let bad_eps = Query::table("Coins").approx_select(
            vec![ConfTerm::new("P1", ["CoinType"])],
            pred.clone(),
            0.0,
            0.05,
        );
        assert!(matches!(
            output_schema(&bad_eps, &cat),
            Err(AlgebraError::InvalidParameter(_))
        ));
        let bad_delta = Query::table("Coins").approx_select(
            vec![ConfTerm::new("P1", ["CoinType"])],
            pred,
            0.01,
            1.0,
        );
        assert!(output_schema(&bad_delta, &cat).is_err());
    }

    #[test]
    fn completeness_follows_definition_2_1() {
        let cat = catalog();
        assert!(is_complete(&Query::table("Coins"), &cat).unwrap());
        let r = Query::table("Coins").repair_key(&[], "Count");
        assert!(!is_complete(&r, &cat).unwrap());
        assert!(!is_complete(&r.clone().project(&["CoinType"]), &cat).unwrap());
        assert!(is_complete(&r.clone().conf("P"), &cat).unwrap());
        assert!(is_complete(&r.clone().poss(), &cat).unwrap());
        // Join of complete and uncertain is uncertain.
        let j = Query::table("Coins").natural_join(r);
        assert!(!is_complete(&j, &cat).unwrap());
    }

    #[test]
    fn positivity_and_repair_key_placement() {
        let q = Query::table("A").difference(Query::table("B"));
        assert!(!is_positive(&q));
        let q = Query::table("A").difference_c(Query::table("B"));
        assert!(is_positive(&q));
        let pred = Predicate::cmp(Expr::attr("P1"), CmpOp::Ge, Expr::konst(0.5));
        let below = Query::table("Coins")
            .repair_key(&[], "Count")
            .approx_select(
                vec![ConfTerm::new("P1", ["CoinType"])],
                pred.clone(),
                0.01,
                0.05,
            );
        assert!(repair_key_below_approx_select(&below));
        let above = Query::table("Coins")
            .approx_select(vec![ConfTerm::new("P1", ["CoinType"])], pred, 0.01, 0.05)
            .repair_key(&[], "Count");
        assert!(!repair_key_below_approx_select(&above));
    }

    #[test]
    fn structural_params_track_depth_and_k() {
        let cat = catalog();
        let pred = Predicate::cmp(Expr::attr("P1"), CmpOp::Ge, Expr::konst(0.5));
        let inner = Query::table("Coins")
            .repair_key(&[], "Count")
            .approx_select(
                vec![ConfTerm::new("P1", ["CoinType"])],
                pred.clone(),
                0.01,
                0.05,
            );
        let outer = inner.approx_select(
            vec![
                ConfTerm::new("P1", ["CoinType"]),
                ConfTerm::new("P2", Vec::<String>::new()),
            ],
            pred,
            0.01,
            0.05,
        );
        let p = structural_params(&outer, &cat).unwrap();
        assert_eq!(p.approx_select_depth, 2);
        assert_eq!(p.repair_key_count, 1);
        assert_eq!(p.conf_count, 0);
        assert!(p.k >= 2);
    }

    #[test]
    fn conf_term_checks() {
        let s = schema!["A", "P"];
        assert!(check_conf_terms(&[ConfTerm::new("P1", ["A"])], &s).is_ok());
        assert!(check_conf_terms(
            &[ConfTerm::new("P1", ["A"]), ConfTerm::new("P1", ["A"])],
            &s
        )
        .is_err());
        assert!(check_conf_terms(&[ConfTerm::new("P", ["A"])], &s).is_err());
    }
}
