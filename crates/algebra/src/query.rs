//! The Uncertainty Algebra (UA) query AST and its builder API.
//!
//! Definition 2.1 of the paper: relational algebra applied per world, the
//! `conf` operation, and the uncertainty-introducing `repair-key`.  Section 6
//! adds the approximate selection operation `σ̂` and the approximate
//! confidence operator `conf_{ε,δ}`.

use crate::expr::Expr;
use crate::predicate::Predicate;
use std::fmt;

/// A projection item: an expression and the name of the output attribute.
///
/// Plain projection `π_A` is the special case `ProjItem { expr: Attr(A),
/// name: A }`; the arithmetic form `π_{P1/P2 → P}` of Example 2.2 uses an
/// arbitrary expression.
#[derive(Clone, Debug, PartialEq)]
pub struct ProjItem {
    /// Expression computed from the input tuple.
    pub expr: Expr,
    /// Output attribute name.
    pub name: String,
}

impl ProjItem {
    /// A pass-through item that keeps attribute `name` unchanged.
    pub fn attr(name: impl Into<String>) -> ProjItem {
        let name = name.into();
        ProjItem {
            expr: Expr::attr(name.clone()),
            name,
        }
    }

    /// A computed item `expr → name`.
    pub fn computed(expr: Expr, name: impl Into<String>) -> ProjItem {
        ProjItem {
            expr,
            name: name.into(),
        }
    }
}

impl fmt::Display for ProjItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Expr::Attr(a) = &self.expr {
            if *a == self.name {
                return write!(f, "{a}");
            }
        }
        write!(f, "{} as {}", self.expr, self.name)
    }
}

/// One confidence term `P_i := conf[A⃗_i]` of an approximate selection
/// `σ̂_{φ(conf[A⃗₁], …, conf[A⃗_k])}(R)` (Section 6).
///
/// For each input tuple `t`, the term's value is the confidence of
/// `t.A⃗_i ∈ π_{A⃗_i}(R)`; `attrs` empty means `conf[∅]`, the probability that
/// `R` is non-empty.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfTerm {
    /// Placeholder attribute name the predicate refers to (e.g. `P1`).
    pub name: String,
    /// Attributes projected before taking the confidence.
    pub attrs: Vec<String>,
}

impl ConfTerm {
    /// Creates a confidence term.
    pub fn new(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        ConfTerm {
            name: name.into(),
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }
}

impl fmt::Display for ConfTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = conf({})", self.name, self.attrs.join(", "))
    }
}

/// Default ε₀ (smallest relative interval the predicate-approximation
/// algorithm will refine to) used when a query does not specify one.
pub const DEFAULT_EPSILON0: f64 = 0.01;

/// Default error bound δ used when a query does not specify one.
pub const DEFAULT_DELTA: f64 = 0.05;

/// A UA query.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// A base relation.
    Table(String),
    /// Selection `σ_φ(R)` evaluated per world.
    Select {
        /// Input query.
        input: Box<Query>,
        /// Selection predicate.
        predicate: Predicate,
    },
    /// Generalised projection `π_{item₁, …}(R)` (set semantics).
    Project {
        /// Input query.
        input: Box<Query>,
        /// Output items.
        items: Vec<ProjItem>,
    },
    /// Extension: keeps all input attributes and appends computed ones
    /// (`ρ_{A+B→C}(R)` in the paper's notation).
    Extend {
        /// Input query.
        input: Box<Query>,
        /// Appended computed items.
        items: Vec<ProjItem>,
    },
    /// Attribute renaming `ρ_{A→B}(R)`.
    Rename {
        /// Input query.
        input: Box<Query>,
        /// Attribute to rename.
        from: String,
        /// New attribute name.
        to: String,
    },
    /// Cartesian product `R × S`.
    Product {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
    /// Natural join `R ⋈ S` (equality on shared attribute names).
    NaturalJoin {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
    /// Union `R ∪ S`.
    Union {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
    /// Difference `R − S` (not part of positive UA).
    Difference {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
    /// Difference `R −c S` restricted to inputs that are complete by `c`,
    /// which stays inside the tractable fragment (Proposition 3.3).
    DifferenceC {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
    /// Exact confidence computation `conf(R)`; output is complete and has
    /// the extra probability column `prob_attr`.
    Conf {
        /// Input query.
        input: Box<Query>,
        /// Name of the probability column added (the paper's `P`).
        prob_attr: String,
    },
    /// Approximate confidence `conf_{ε,δ}(R)` (Corollary 4.3).
    ApproxConf {
        /// Input query.
        input: Box<Query>,
        /// Name of the probability column added.
        prob_attr: String,
        /// Relative error ε.
        epsilon: f64,
        /// Error probability δ.
        delta: f64,
    },
    /// `repair-key_{A⃗@B}(R)`: uncertainty introduction on a complete input.
    RepairKey {
        /// Input query (must evaluate to a complete relation).
        input: Box<Query>,
        /// Key attributes `A⃗` (may be empty).
        key: Vec<String>,
        /// Weight attribute `B`.
        weight: String,
    },
    /// `poss(R)`: all tuples appearing in some world (complete result).
    Poss {
        /// Input query.
        input: Box<Query>,
    },
    /// `cert(R)`: tuples appearing in every world (complete result).
    Cert {
        /// Input query.
        input: Box<Query>,
    },
    /// Approximate selection `σ̂_{φ(conf[A⃗₁], …, conf[A⃗_k])}(R)` (Section 6).
    ApproxSelect {
        /// Input query.
        input: Box<Query>,
        /// Confidence terms the predicate refers to.
        terms: Vec<ConfTerm>,
        /// Predicate over the term names (and constants).
        predicate: Predicate,
        /// Smallest relative half-width ε₀ the algorithm refines to.
        epsilon0: f64,
        /// Per-operator error bound δ.
        delta: f64,
    },
}

impl Query {
    /// A base relation.
    pub fn table(name: impl Into<String>) -> Query {
        Query::Table(name.into())
    }

    /// `σ_pred(self)`.
    pub fn select(self, predicate: Predicate) -> Query {
        Query::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// `π_attrs(self)` with pass-through items.
    pub fn project(self, attrs: &[&str]) -> Query {
        Query::Project {
            input: Box::new(self),
            items: attrs.iter().map(|a| ProjItem::attr(*a)).collect(),
        }
    }

    /// `π_items(self)` with arbitrary computed items.
    pub fn project_items(self, items: Vec<ProjItem>) -> Query {
        Query::Project {
            input: Box::new(self),
            items,
        }
    }

    /// Appends computed attributes, keeping the existing ones.
    pub fn extend(self, items: Vec<ProjItem>) -> Query {
        Query::Extend {
            input: Box::new(self),
            items,
        }
    }

    /// `ρ_{from→to}(self)`.
    pub fn rename(self, from: impl Into<String>, to: impl Into<String>) -> Query {
        Query::Rename {
            input: Box::new(self),
            from: from.into(),
            to: to.into(),
        }
    }

    /// `self × other`.
    pub fn product(self, other: Query) -> Query {
        Query::Product {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self ⋈ other`.
    pub fn natural_join(self, other: Query) -> Query {
        Query::NaturalJoin {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self ∪ other`.
    pub fn union(self, other: Query) -> Query {
        Query::Union {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self − other`.
    pub fn difference(self, other: Query) -> Query {
        Query::Difference {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self −c other` (both inputs must be complete).
    pub fn difference_c(self, other: Query) -> Query {
        Query::DifferenceC {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `conf(self)` with probability column `prob_attr`.
    pub fn conf(self, prob_attr: impl Into<String>) -> Query {
        Query::Conf {
            input: Box::new(self),
            prob_attr: prob_attr.into(),
        }
    }

    /// `conf_{ε,δ}(self)`.
    pub fn approx_conf(self, prob_attr: impl Into<String>, epsilon: f64, delta: f64) -> Query {
        Query::ApproxConf {
            input: Box::new(self),
            prob_attr: prob_attr.into(),
            epsilon,
            delta,
        }
    }

    /// `repair-key_{key@weight}(self)`.
    pub fn repair_key(self, key: &[&str], weight: impl Into<String>) -> Query {
        Query::RepairKey {
            input: Box::new(self),
            key: key.iter().map(|s| s.to_string()).collect(),
            weight: weight.into(),
        }
    }

    /// `poss(self)`.
    pub fn poss(self) -> Query {
        Query::Poss {
            input: Box::new(self),
        }
    }

    /// `cert(self)`.
    pub fn cert(self) -> Query {
        Query::Cert {
            input: Box::new(self),
        }
    }

    /// `σ̂_{φ(terms)}(self)` with explicit approximation parameters.
    pub fn approx_select(
        self,
        terms: Vec<ConfTerm>,
        predicate: Predicate,
        epsilon0: f64,
        delta: f64,
    ) -> Query {
        Query::ApproxSelect {
            input: Box::new(self),
            terms,
            predicate,
            epsilon0,
            delta,
        }
    }

    /// `σ̂` with the default ε₀ and δ.
    pub fn approx_select_default(self, terms: Vec<ConfTerm>, predicate: Predicate) -> Query {
        self.approx_select(terms, predicate, DEFAULT_EPSILON0, DEFAULT_DELTA)
    }

    /// The children of this operator, in left-to-right order.
    pub fn children(&self) -> Vec<&Query> {
        match self {
            Query::Table(_) => vec![],
            Query::Select { input, .. }
            | Query::Project { input, .. }
            | Query::Extend { input, .. }
            | Query::Rename { input, .. }
            | Query::Conf { input, .. }
            | Query::ApproxConf { input, .. }
            | Query::RepairKey { input, .. }
            | Query::Poss { input }
            | Query::Cert { input }
            | Query::ApproxSelect { input, .. } => vec![input],
            Query::Product { left, right }
            | Query::NaturalJoin { left, right }
            | Query::Union { left, right }
            | Query::Difference { left, right }
            | Query::DifferenceC { left, right } => vec![left, right],
        }
    }

    /// Names of the base relations the query reads, without duplicates.
    pub fn base_relations(&self) -> Vec<String> {
        fn collect(q: &Query, out: &mut Vec<String>) {
            if let Query::Table(name) = q {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            for c in q.children() {
                collect(c, out);
            }
        }
        let mut out = Vec::new();
        collect(self, &mut out);
        out
    }

    /// Number of operators in the query tree.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Table(name) => write!(f, "{name}"),
            Query::Select { input, predicate } => write!(f, "select[{predicate}]({input})"),
            Query::Project { input, items } => {
                let items: Vec<String> = items.iter().map(|i| i.to_string()).collect();
                write!(f, "project[{}]({input})", items.join(", "))
            }
            Query::Extend { input, items } => {
                let items: Vec<String> = items.iter().map(|i| i.to_string()).collect();
                write!(f, "extend[{}]({input})", items.join(", "))
            }
            Query::Rename { input, from, to } => write!(f, "rename[{from} -> {to}]({input})"),
            Query::Product { left, right } => write!(f, "product({left}, {right})"),
            Query::NaturalJoin { left, right } => write!(f, "join({left}, {right})"),
            Query::Union { left, right } => write!(f, "union({left}, {right})"),
            Query::Difference { left, right } => write!(f, "diff({left}, {right})"),
            Query::DifferenceC { left, right } => write!(f, "diffc({left}, {right})"),
            Query::Conf { input, prob_attr } => write!(f, "conf[{prob_attr}]({input})"),
            Query::ApproxConf {
                input,
                prob_attr,
                epsilon,
                delta,
            } => write!(f, "aconf[{epsilon}, {delta}, {prob_attr}]({input})"),
            Query::RepairKey { input, key, weight } => {
                write!(f, "repairkey[{} @ {weight}]({input})", key.join(", "))
            }
            Query::Poss { input } => write!(f, "poss({input})"),
            Query::Cert { input } => write!(f, "cert({input})"),
            Query::ApproxSelect {
                input,
                terms,
                predicate,
                epsilon0,
                delta,
            } => {
                let terms: Vec<String> = terms.iter().map(|t| t.to_string()).collect();
                write!(
                    f,
                    "aselect[{}; {predicate}; eps0 = {epsilon0}; delta = {delta}]({input})",
                    terms.join(", ")
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    /// Builds the query of Example 2.2 up to relation `T`.
    fn example_2_2_t() -> Query {
        let r = Query::table("Coins")
            .repair_key(&[], "Count")
            .project(&["CoinType"]);
        let s = Query::table("Faces")
            .product(Query::table("Tosses"))
            .repair_key(&["CoinType", "Toss"], "FProb")
            .project(&["CoinType", "Toss", "Face"]);
        let heads1 = s
            .clone()
            .select(
                Predicate::eq(Expr::attr("Toss"), Expr::konst(1))
                    .and(Predicate::eq(Expr::attr("Face"), Expr::konst("H"))),
            )
            .project(&["CoinType"]);
        let heads2 = s
            .select(
                Predicate::eq(Expr::attr("Toss"), Expr::konst(2))
                    .and(Predicate::eq(Expr::attr("Face"), Expr::konst("H"))),
            )
            .project(&["CoinType"]);
        r.natural_join(heads1).natural_join(heads2)
    }

    #[test]
    fn builder_produces_the_expected_shape() {
        let t = example_2_2_t();
        assert!(matches!(t, Query::NaturalJoin { .. }));
        assert_eq!(
            t.base_relations(),
            vec![
                "Coins".to_string(),
                "Faces".to_string(),
                "Tosses".to_string()
            ]
        );
        assert!(t.size() > 10);
    }

    #[test]
    fn conditional_probability_query_displays() {
        // U := π_{CoinType, P1/P2 → P}(ρ_{P→P1}(conf(T)) ⋈ ρ_{P→P2}(conf(π_∅(T)))).
        let t = Query::table("T");
        let u = t
            .clone()
            .conf("P")
            .rename("P", "P1")
            .product(t.project(&[]).conf("P").rename("P", "P2"))
            .project_items(vec![
                ProjItem::attr("CoinType"),
                ProjItem::computed(Expr::attr("P1") / Expr::attr("P2"), "P"),
            ]);
        let s = u.to_string();
        assert!(s.contains("conf[P](T)"));
        assert!(s.contains("(P1 / P2) as P"));
        assert!(s.contains("rename[P -> P2]"));
    }

    #[test]
    fn approx_select_defaults() {
        let q = Query::table("T").approx_select_default(
            vec![
                ConfTerm::new("P1", ["CoinType"]),
                ConfTerm::new("P2", Vec::<String>::new()),
            ],
            Predicate::cmp(
                Expr::attr("P1") / Expr::attr("P2"),
                CmpOp::Le,
                Expr::konst(0.5),
            ),
        );
        if let Query::ApproxSelect {
            epsilon0,
            delta,
            terms,
            ..
        } = &q
        {
            assert_eq!(*epsilon0, DEFAULT_EPSILON0);
            assert_eq!(*delta, DEFAULT_DELTA);
            assert_eq!(terms[1].attrs.len(), 0);
        } else {
            panic!("expected ApproxSelect");
        }
        assert!(q.to_string().contains("aselect"));
        assert!(q.to_string().contains("P2 = conf()"));
    }

    #[test]
    fn children_and_size() {
        let q = Query::table("A")
            .union(Query::table("B"))
            .select(Predicate::True);
        assert_eq!(q.size(), 4);
        assert_eq!(q.children().len(), 1);
        assert_eq!(q.children()[0].children().len(), 2);
        assert_eq!(Query::table("A").children().len(), 0);
    }

    #[test]
    fn repair_key_display() {
        let q = Query::table("Faces").repair_key(&["CoinType", "Toss"], "FProb");
        assert_eq!(q.to_string(), "repairkey[CoinType, Toss @ FProb](Faces)");
        let q = Query::table("Coins").repair_key(&[], "Count");
        assert_eq!(q.to_string(), "repairkey[ @ Count](Coins)");
    }
}
