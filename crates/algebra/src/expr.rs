//! Arithmetic expressions used in selection conditions and in the arguments
//! of `π` and `ρ` (Section 2 allows arbitrary arithmetic there, e.g.
//! `ρ_{A+B→C}(R)` or `π_{CoinType, P1/P2 → P}`).

use crate::error::{AlgebraError, Result};
use pdb::{Schema, Tuple, Value};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An arithmetic expression over the attributes of a single tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A constant value.
    Const(Value),
    /// Reference to an attribute by name.
    Attr(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division.
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Constant expression.
    pub fn konst(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// Attribute reference.
    pub fn attr(name: impl Into<String>) -> Expr {
        Expr::Attr(name.into())
    }

    /// The attribute names referenced by the expression, in first-occurrence
    /// order and without duplicates.
    pub fn attrs(&self) -> Vec<String> {
        fn collect(e: &Expr, out: &mut Vec<String>) {
            match e {
                Expr::Const(_) => {}
                Expr::Attr(a) => {
                    if !out.contains(a) {
                        out.push(a.clone());
                    }
                }
                Expr::Neg(x) => collect(x, out),
                Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                    collect(a, out);
                    collect(b, out);
                }
            }
        }
        let mut out = Vec::new();
        collect(self, &mut out);
        out
    }

    /// Counts how many times each attribute occurs (Theorem 5.5 applies to
    /// predicates in which each approximated attribute occurs exactly once).
    pub fn occurrence_counts(&self) -> Vec<(String, usize)> {
        fn collect(e: &Expr, out: &mut Vec<(String, usize)>) {
            match e {
                Expr::Const(_) => {}
                Expr::Attr(a) => {
                    if let Some(entry) = out.iter_mut().find(|(n, _)| n == a) {
                        entry.1 += 1;
                    } else {
                        out.push((a.clone(), 1));
                    }
                }
                Expr::Neg(x) => collect(x, out),
                Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                    collect(a, out);
                    collect(b, out);
                }
            }
        }
        let mut out = Vec::new();
        collect(self, &mut out);
        out
    }

    /// Checks that every referenced attribute exists in `schema`.
    pub fn check(&self, schema: &Schema) -> Result<()> {
        for a in self.attrs() {
            if !schema.contains(&a) {
                return Err(AlgebraError::UnknownAttribute(a));
            }
        }
        Ok(())
    }

    /// Evaluates the expression against a tuple of the given schema.
    ///
    /// Attribute references that resolve to non-arithmetic leaf expressions
    /// (plain `Attr` or `Const`) may produce strings/booleans; any value
    /// participating in arithmetic must be numeric.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Attr(a) => {
                let i = schema
                    .index_of(a)
                    .ok_or_else(|| AlgebraError::UnknownAttribute(a.clone()))?;
                Ok(tuple[i].clone())
            }
            Expr::Neg(x) => Ok(Value::float(-x.eval_numeric(schema, tuple)?)),
            Expr::Add(a, b) => Ok(Value::float(
                a.eval_numeric(schema, tuple)? + b.eval_numeric(schema, tuple)?,
            )),
            Expr::Sub(a, b) => Ok(Value::float(
                a.eval_numeric(schema, tuple)? - b.eval_numeric(schema, tuple)?,
            )),
            Expr::Mul(a, b) => Ok(Value::float(
                a.eval_numeric(schema, tuple)? * b.eval_numeric(schema, tuple)?,
            )),
            Expr::Div(a, b) => {
                let d = b.eval_numeric(schema, tuple)?;
                if d == 0.0 {
                    return Err(AlgebraError::DivisionByZero);
                }
                Ok(Value::float(a.eval_numeric(schema, tuple)? / d))
            }
        }
    }

    /// Evaluates the expression and requires a numeric result.
    pub fn eval_numeric(&self, schema: &Schema, tuple: &Tuple) -> Result<f64> {
        let v = self.eval(schema, tuple)?;
        v.as_f64().ok_or_else(|| {
            AlgebraError::TypeError(format!("expected a number, got `{v}` in `{self}`"))
        })
    }

    /// True if the expression contains no attribute references.
    pub fn is_constant(&self) -> bool {
        self.attrs().is_empty()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::Neg(x) => write!(f, "(-{x})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}
impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}
impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}
impl Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
}
impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb::{schema, tuple};

    fn env() -> (Schema, Tuple) {
        (schema!["A", "B", "Name"], tuple![4, 2.5, "x"])
    }

    #[test]
    fn evaluates_arithmetic() {
        let (s, t) = env();
        let e = (Expr::attr("A") + Expr::attr("B")) * Expr::konst(2.0);
        assert_eq!(e.eval_numeric(&s, &t).unwrap(), 13.0);
        let e = Expr::attr("A") / Expr::konst(8.0) - Expr::konst(0.25);
        assert_eq!(e.eval_numeric(&s, &t).unwrap(), 0.25);
        let e = -Expr::attr("A");
        assert_eq!(e.eval_numeric(&s, &t).unwrap(), -4.0);
    }

    #[test]
    fn attribute_leaves_keep_their_type() {
        let (s, t) = env();
        assert_eq!(Expr::attr("Name").eval(&s, &t).unwrap(), Value::str("x"));
        assert_eq!(Expr::konst(true).eval(&s, &t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn type_and_division_errors() {
        let (s, t) = env();
        let e = Expr::attr("Name") + Expr::konst(1.0);
        assert!(matches!(e.eval(&s, &t), Err(AlgebraError::TypeError(_))));
        let e = Expr::attr("A") / Expr::konst(0.0);
        assert_eq!(e.eval(&s, &t), Err(AlgebraError::DivisionByZero));
        let e = Expr::attr("Missing");
        assert!(matches!(
            e.eval(&s, &t),
            Err(AlgebraError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn attrs_and_occurrences() {
        let e = Expr::attr("A") + Expr::attr("B") * Expr::attr("A");
        assert_eq!(e.attrs(), vec!["A".to_string(), "B".to_string()]);
        let counts = e.occurrence_counts();
        assert!(counts.contains(&("A".to_string(), 2)));
        assert!(counts.contains(&("B".to_string(), 1)));
        assert!(!e.is_constant());
        assert!(Expr::konst(1).is_constant());
    }

    #[test]
    fn check_against_schema() {
        let (s, _) = env();
        assert!(Expr::attr("A").check(&s).is_ok());
        assert!(Expr::attr("Z").check(&s).is_err());
    }

    #[test]
    fn display_round_trip_shape() {
        let e = (Expr::attr("P1") / Expr::attr("P2")) - Expr::konst(0.5);
        assert_eq!(e.to_string(), "((P1 / P2) - 0.5)");
        assert_eq!(Expr::konst("s").to_string(), "'s'");
    }
}
