//! A small textual syntax for UA queries, mirroring the algebraic notation of
//! the paper.
//!
//! Grammar (informally):
//!
//! ```text
//! query     := IDENT
//!            | select '[' pred ']' '(' query ')'
//!            | project '[' projlist ']' '(' query ')'
//!            | extend '[' projlist ']' '(' query ')'
//!            | rename '[' IDENT '->' IDENT ']' '(' query ')'
//!            | product | join | union | diff | diffc  '(' query ',' query ')'
//!            | conf [ '[' IDENT ']' ] '(' query ')'
//!            | aconf '[' NUM ',' NUM [',' IDENT] ']' '(' query ')'
//!            | repairkey '[' [identlist] '@' IDENT ']' '(' query ')'
//!            | poss '(' query ')' | cert '(' query ')'
//!            | aselect '[' termlist ';' pred [';' eps0 '=' NUM] [';' delta '=' NUM] ']' '(' query ')'
//! term      := IDENT '=' conf '(' [identlist] ')'
//! pred      := disjunction of conjunctions of (possibly negated) comparisons
//! expr      := arithmetic over attributes, numbers and 'strings'
//! ```
//!
//! Example — the conditional-probability selection of Example 6.1:
//!
//! ```text
//! aselect[P1 = conf(CoinType), P2 = conf(); P1 / P2 <= 0.5](T)
//! ```

mod lexer;

pub use lexer::{tokenize, Token, TokenKind};

use crate::error::{AlgebraError, Result};
use crate::expr::Expr;
use crate::predicate::{CmpOp, Predicate};
use crate::query::{ConfTerm, ProjItem, Query, DEFAULT_DELTA, DEFAULT_EPSILON0};
use pdb::Value;

/// Parses a textual UA query.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect(&TokenKind::Eof)?;
    Ok(q)
}

/// Parses a selection predicate on its own (useful in tests and tools).
pub fn parse_predicate(input: &str) -> Result<Predicate> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let pred = p.predicate()?;
    p.expect(&TokenKind::Eof)?;
    Ok(pred)
}

/// Parses an arithmetic expression on its own.
pub fn parse_expr(input: &str) -> Result<Expr> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].position
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn error(&self, message: impl Into<String>) -> AlgebraError {
        AlgebraError::Parse {
            position: self.position(),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind:?}, found {:?}", self.peek())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.advance() {
            TokenKind::Number(n) => Ok(n),
            other => Err(self.error(format!("expected number, found {other:?}"))),
        }
    }

    // ---- queries ---------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        let TokenKind::Ident(head) = self.peek().clone() else {
            return Err(self.error("expected an operator or relation name"));
        };
        match head.as_str() {
            "select" => {
                self.advance();
                self.expect(&TokenKind::LBracket)?;
                let pred = self.predicate()?;
                self.expect(&TokenKind::RBracket)?;
                let input = self.parenthesised_query()?;
                Ok(input.select(pred))
            }
            "project" | "extend" => {
                self.advance();
                self.expect(&TokenKind::LBracket)?;
                let items = self.proj_items()?;
                self.expect(&TokenKind::RBracket)?;
                let input = self.parenthesised_query()?;
                Ok(if head == "project" {
                    input.project_items(items)
                } else {
                    input.extend(items)
                })
            }
            "rename" => {
                self.advance();
                self.expect(&TokenKind::LBracket)?;
                let from = self.ident()?;
                self.expect(&TokenKind::Arrow)?;
                let to = self.ident()?;
                self.expect(&TokenKind::RBracket)?;
                let input = self.parenthesised_query()?;
                Ok(input.rename(from, to))
            }
            "product" | "join" | "union" | "diff" | "diffc" => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let left = self.query()?;
                self.expect(&TokenKind::Comma)?;
                let right = self.query()?;
                self.expect(&TokenKind::RParen)?;
                Ok(match head.as_str() {
                    "product" => left.product(right),
                    "join" => left.natural_join(right),
                    "union" => left.union(right),
                    "diff" => left.difference(right),
                    _ => left.difference_c(right),
                })
            }
            "conf" => {
                self.advance();
                let prob_attr = if self.eat(&TokenKind::LBracket) {
                    let a = self.ident()?;
                    self.expect(&TokenKind::RBracket)?;
                    a
                } else {
                    "P".to_owned()
                };
                let input = self.parenthesised_query()?;
                Ok(input.conf(prob_attr))
            }
            "aconf" => {
                self.advance();
                self.expect(&TokenKind::LBracket)?;
                let epsilon = self.number()?;
                self.expect(&TokenKind::Comma)?;
                let delta = self.number()?;
                let prob_attr = if self.eat(&TokenKind::Comma) {
                    self.ident()?
                } else {
                    "P".to_owned()
                };
                self.expect(&TokenKind::RBracket)?;
                let input = self.parenthesised_query()?;
                Ok(input.approx_conf(prob_attr, epsilon, delta))
            }
            "repairkey" => {
                self.advance();
                self.expect(&TokenKind::LBracket)?;
                let mut key = Vec::new();
                while !matches!(self.peek(), TokenKind::At) {
                    key.push(self.ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::At)?;
                let weight = self.ident()?;
                self.expect(&TokenKind::RBracket)?;
                let input = self.parenthesised_query()?;
                let key_refs: Vec<&str> = key.iter().map(String::as_str).collect();
                Ok(input.repair_key(&key_refs, weight))
            }
            "poss" => {
                self.advance();
                Ok(self.parenthesised_query()?.poss())
            }
            "cert" => {
                self.advance();
                Ok(self.parenthesised_query()?.cert())
            }
            "aselect" => {
                self.advance();
                self.expect(&TokenKind::LBracket)?;
                let terms = self.conf_terms()?;
                self.expect(&TokenKind::Semicolon)?;
                let pred = self.predicate()?;
                let mut epsilon0 = DEFAULT_EPSILON0;
                let mut delta = DEFAULT_DELTA;
                while self.eat(&TokenKind::Semicolon) {
                    let name = self.ident()?;
                    self.expect(&TokenKind::Eq)?;
                    let value = self.number()?;
                    match name.as_str() {
                        "eps0" => epsilon0 = value,
                        "delta" => delta = value,
                        other => {
                            return Err(self.error(format!(
                                "unknown aselect parameter `{other}` (expected eps0 or delta)"
                            )))
                        }
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                let input = self.parenthesised_query()?;
                Ok(input.approx_select(terms, pred, epsilon0, delta))
            }
            _ => {
                // A bare identifier is a base relation.
                self.advance();
                Ok(Query::table(head))
            }
        }
    }

    fn parenthesised_query(&mut self) -> Result<Query> {
        self.expect(&TokenKind::LParen)?;
        let q = self.query()?;
        self.expect(&TokenKind::RParen)?;
        Ok(q)
    }

    fn proj_items(&mut self) -> Result<Vec<ProjItem>> {
        let mut items = Vec::new();
        // An empty item list (project[]) is allowed: it is π_∅.
        if matches!(self.peek(), TokenKind::RBracket) {
            return Ok(items);
        }
        loop {
            let expr = self.expr()?;
            let item = if let TokenKind::Ident(kw) = self.peek() {
                if kw == "as" {
                    self.advance();
                    let name = self.ident()?;
                    ProjItem::computed(expr, name)
                } else {
                    return Err(self.error("expected `as`, `,` or `]` after projection item"));
                }
            } else if let Expr::Attr(name) = &expr {
                ProjItem::attr(name.clone())
            } else {
                return Err(self.error("computed projection item needs `as <name>`"));
            };
            items.push(item);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn conf_terms(&mut self) -> Result<Vec<ConfTerm>> {
        let mut terms = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let kw = self.ident()?;
            if kw != "conf" {
                return Err(self.error("confidence term must be of the form `P = conf(...)`"));
            }
            self.expect(&TokenKind::LParen)?;
            let mut attrs = Vec::new();
            while !matches!(self.peek(), TokenKind::RParen) {
                attrs.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            terms.push(ConfTerm { name, attrs });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(terms)
    }

    // ---- predicates -------------------------------------------------------

    fn predicate(&mut self) -> Result<Predicate> {
        let mut left = self.conjunction()?;
        while let TokenKind::Ident(kw) = self.peek() {
            if kw == "or" {
                self.advance();
                let right = self.conjunction()?;
                left = left.or(right);
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> Result<Predicate> {
        let mut left = self.negation()?;
        while let TokenKind::Ident(kw) = self.peek() {
            if kw == "and" {
                self.advance();
                let right = self.negation()?;
                left = left.and(right);
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn negation(&mut self) -> Result<Predicate> {
        if let TokenKind::Ident(kw) = self.peek() {
            if kw == "not" {
                self.advance();
                return Ok(self.negation()?.not());
            }
            if kw == "true" {
                self.advance();
                return Ok(Predicate::True);
            }
            if kw == "false" {
                self.advance();
                return Ok(Predicate::False);
            }
        }
        // A leading `(` is ambiguous: it may parenthesise a Boolean predicate
        // (as the Display form of And/Or does) or an arithmetic expression
        // inside a comparison.  Try the predicate reading first and backtrack
        // on failure.
        if matches!(self.peek(), TokenKind::LParen) {
            let saved = self.pos;
            self.advance();
            if let Ok(pred) = self.predicate() {
                if self.eat(&TokenKind::RParen) {
                    return Ok(pred);
                }
            }
            self.pos = saved;
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Predicate> {
        let left = self.expr()?;
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(self.error(format!("expected comparison operator, found {other:?}")))
            }
        };
        self.advance();
        let right = self.expr()?;
        Ok(Predicate::Cmp(left, op, right))
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        let mut left = self.term()?;
        loop {
            match self.peek() {
                TokenKind::Plus => {
                    self.advance();
                    left = left + self.term()?;
                }
                TokenKind::Minus => {
                    self.advance();
                    left = left - self.term()?;
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr> {
        let mut left = self.factor()?;
        loop {
            match self.peek() {
                TokenKind::Star => {
                    self.advance();
                    left = left * self.factor()?;
                }
                TokenKind::Slash => {
                    self.advance();
                    left = left / self.factor()?;
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Minus => {
                self.advance();
                Ok(-self.factor()?)
            }
            TokenKind::Number(n) => {
                self.advance();
                Ok(Expr::konst(n))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Const(Value::Str(s)))
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Expr::attr(name))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bare_table() {
        assert_eq!(parse_query("Coins").unwrap(), Query::table("Coins"));
    }

    #[test]
    fn parses_the_coin_pipeline() {
        let q = parse_query("project[CoinType](repairkey[ @ Count](Coins))").unwrap();
        assert_eq!(
            q,
            Query::table("Coins")
                .repair_key(&[], "Count")
                .project(&["CoinType"])
        );
        let q = parse_query(
            "project[CoinType, Toss, Face](repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)))",
        )
        .unwrap();
        assert_eq!(
            q,
            Query::table("Faces")
                .product(Query::table("Tosses"))
                .repair_key(&["CoinType", "Toss"], "FProb")
                .project(&["CoinType", "Toss", "Face"])
        );
    }

    #[test]
    fn parses_selections_and_predicates() {
        let q = parse_query("select[Toss = 1 and Face = 'H'](S)").unwrap();
        assert_eq!(
            q,
            Query::table("S").select(
                Predicate::eq(Expr::attr("Toss"), Expr::konst(1.0))
                    .and(Predicate::eq(Expr::attr("Face"), Expr::konst("H")))
            )
        );
        let p = parse_predicate("not P >= 0.5 or Face != 'T'").unwrap();
        assert_eq!(
            p,
            Predicate::ge(Expr::attr("P"), Expr::konst(0.5))
                .not()
                .or(Predicate::cmp(
                    Expr::attr("Face"),
                    CmpOp::Ne,
                    Expr::konst("T")
                ))
        );
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let e = parse_expr("P1 / P2 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::attr("P1") / Expr::attr("P2") + Expr::konst(2.0) * Expr::konst(3.0)
        );
        let e = parse_expr("(A + B) * -C").unwrap();
        assert_eq!(e, (Expr::attr("A") + Expr::attr("B")) * (-Expr::attr("C")));
    }

    #[test]
    fn parses_conf_and_conditional_probability_query() {
        let q = parse_query(
            "project[CoinType, P1 / P2 as P](join(rename[P -> P1](conf(T)), rename[P -> P2](conf(project[](T)))))",
        )
        .unwrap();
        let expected = Query::table("T")
            .conf("P")
            .rename("P", "P1")
            .natural_join(
                Query::table("T")
                    .project_items(vec![])
                    .conf("P")
                    .rename("P", "P2"),
            )
            .project_items(vec![
                ProjItem::attr("CoinType"),
                ProjItem::computed(Expr::attr("P1") / Expr::attr("P2"), "P"),
            ]);
        assert_eq!(q, expected);
    }

    #[test]
    fn parses_aconf_and_aselect() {
        let q = parse_query("aconf[0.1, 0.05, Prob](T)").unwrap();
        assert_eq!(q, Query::table("T").approx_conf("Prob", 0.1, 0.05));

        let q = parse_query(
            "aselect[P1 = conf(CoinType), P2 = conf(); P1 / P2 <= 0.5; eps0 = 0.02; delta = 0.1](T)",
        )
        .unwrap();
        if let Query::ApproxSelect {
            terms,
            epsilon0,
            delta,
            ..
        } = &q
        {
            assert_eq!(terms.len(), 2);
            assert_eq!(terms[0].attrs, vec!["CoinType".to_string()]);
            assert!(terms[1].attrs.is_empty());
            assert_eq!(*epsilon0, 0.02);
            assert_eq!(*delta, 0.1);
        } else {
            panic!("expected ApproxSelect, got {q:?}");
        }
        // Defaults are filled in when parameters are omitted.
        let q = parse_query("aselect[P1 = conf(A); P1 >= 0.5](T)").unwrap();
        if let Query::ApproxSelect {
            epsilon0, delta, ..
        } = q
        {
            assert_eq!(epsilon0, DEFAULT_EPSILON0);
            assert_eq!(delta, DEFAULT_DELTA);
        } else {
            panic!("expected ApproxSelect");
        }
    }

    /// The display form of a parsed query must re-parse to the same display
    /// (a closed normalization).  The serving layer keys its plan cache —
    /// and the checkpoint store its persisted warm entries — by this
    /// normalized text, so a display form the parser rejects would make a
    /// query unpreparable from its own cache key.
    #[test]
    fn display_forms_re_parse_to_a_fixpoint() {
        let texts = [
            "poss(join(R, S))",
            "conf(project[CoinType](repairkey[ @ Count](Coins)))",
            "aconf[0.3, 0.15](project[B](join(repairkey[K @ W](R), S)))",
            "aconf[0.1, 0.05, Prob](T)",
            "aselect[P1 = conf(A); P1 >= 0.5; eps0 = 0.02; delta = 0.1](T)",
            "diffc(poss(select[K = 1](A)), cert(extend[W * 2 as V](B)))",
            "union(rename[B -> C](product(A, B)), diff(A, A))",
        ];
        for text in texts {
            let normalized = parse_query(text).unwrap().to_string();
            let reparsed = parse_query(&normalized)
                .unwrap_or_else(|e| panic!("`{normalized}` does not re-parse: {e}"));
            assert_eq!(reparsed.to_string(), normalized, "not a fixpoint: {text}");
        }
    }

    #[test]
    fn parses_set_operations_and_poss_cert() {
        assert_eq!(
            parse_query("union(A, B)").unwrap(),
            Query::table("A").union(Query::table("B"))
        );
        assert_eq!(
            parse_query("diffc(poss(A), cert(B))").unwrap(),
            Query::table("A")
                .poss()
                .difference_c(Query::table("B").cert())
        );
    }

    #[test]
    fn round_trips_display_output() {
        // Display output of a query parses back to the same query.
        let q = Query::table("Faces")
            .product(Query::table("Tosses"))
            .repair_key(&["CoinType", "Toss"], "FProb")
            .select(Predicate::eq(Expr::attr("Face"), Expr::konst("H")))
            .project(&["CoinType"])
            .conf("P");
        let reparsed = parse_query(&q.to_string()).unwrap();
        // Numeric constants become floats when parsed, so compare displays.
        assert_eq!(reparsed.to_string(), q.to_string());
    }

    #[test]
    fn reports_parse_errors() {
        assert!(parse_query("select[P >](T)").is_err());
        assert!(parse_query("project[A as ](T)").is_err());
        assert!(parse_query("join(A,)").is_err());
        assert!(parse_query("aselect[P1 = xonf(A); P1 >= 0.5](T)").is_err());
        assert!(parse_query("aselect[P1 = conf(A); P1 >= 0.5; bogus = 1](T)").is_err());
        assert!(parse_query("Coins extra").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_predicate("A").is_err());
    }
}
