//! Tokenizer for the textual UA query syntax.

use crate::error::{AlgebraError, Result};

/// A lexical token with its byte position in the input.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Byte offset where the token starts.
    pub position: usize,
    /// The token kind and payload.
    pub kind: TokenKind,
}

/// The kinds of tokens the UA query syntax uses.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`select`, `conf`, attribute names, …).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `@`
    At,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

/// Tokenizes `input`, returning the token stream terminated by
/// [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    position: i,
                    kind: TokenKind::LParen,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    position: i,
                    kind: TokenKind::RParen,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    position: i,
                    kind: TokenKind::LBracket,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    position: i,
                    kind: TokenKind::RBracket,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    position: i,
                    kind: TokenKind::Comma,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    position: i,
                    kind: TokenKind::Semicolon,
                });
                i += 1;
            }
            '@' => {
                tokens.push(Token {
                    position: i,
                    kind: TokenKind::At,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    position: i,
                    kind: TokenKind::Plus,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    position: i,
                    kind: TokenKind::Star,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    position: i,
                    kind: TokenKind::Slash,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    position: i,
                    kind: TokenKind::Eq,
                });
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        position: i,
                        kind: TokenKind::Arrow,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        position: i,
                        kind: TokenKind::Minus,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        position: i,
                        kind: TokenKind::Ne,
                    });
                    i += 2;
                } else {
                    return Err(AlgebraError::Parse {
                        position: i,
                        message: "expected `!=`".to_owned(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        position: i,
                        kind: TokenKind::Le,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        position: i,
                        kind: TokenKind::Lt,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        position: i,
                        kind: TokenKind::Ge,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        position: i,
                        kind: TokenKind::Gt,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(&b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => {
                            return Err(AlgebraError::Parse {
                                position: start,
                                message: "unterminated string literal".to_owned(),
                            })
                        }
                    }
                }
                tokens.push(Token {
                    position: start,
                    kind: TokenKind::Str(s),
                });
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let value: f64 = text.parse().map_err(|_| AlgebraError::Parse {
                    position: start,
                    message: format!("invalid number `{text}`"),
                })?;
                tokens.push(Token {
                    position: start,
                    kind: TokenKind::Number(value),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    position: start,
                    kind: TokenKind::Ident(input[start..i].to_owned()),
                });
            }
            other => {
                return Err(AlgebraError::Parse {
                    position: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token {
        position: input.len(),
        kind: TokenKind::Eof,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_operators_and_idents() {
        let ks = kinds("select[P1 / P2 <= 0.5](T)");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::LBracket,
                TokenKind::Ident("P1".into()),
                TokenKind::Slash,
                TokenKind::Ident("P2".into()),
                TokenKind::Le,
                TokenKind::Number(0.5),
                TokenKind::RBracket,
                TokenKind::LParen,
                TokenKind::Ident("T".into()),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_strings_arrows_and_comparisons() {
        let ks = kinds("rename[P -> P1] Face = 'H' x != 1 a >= 2 b < 3");
        assert!(ks.contains(&TokenKind::Arrow));
        assert!(ks.contains(&TokenKind::Str("H".into())));
        assert!(ks.contains(&TokenKind::Ne));
        assert!(ks.contains(&TokenKind::Ge));
        assert!(ks.contains(&TokenKind::Lt));
    }

    #[test]
    fn tokenizes_scientific_numbers() {
        let ks = kinds("1e-3 2.5E+2 7");
        assert_eq!(
            ks,
            vec![
                TokenKind::Number(1e-3),
                TokenKind::Number(2.5e2),
                TokenKind::Number(7.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn reports_errors_with_positions() {
        let err = tokenize("abc $").unwrap_err();
        assert!(matches!(err, AlgebraError::Parse { position: 4, .. }));
        let err = tokenize("'open").unwrap_err();
        assert!(matches!(err, AlgebraError::Parse { position: 0, .. }));
        let err = tokenize("a ! b").unwrap_err();
        assert!(matches!(err, AlgebraError::Parse { .. }));
    }

    #[test]
    fn positions_point_at_token_starts() {
        let ts = tokenize("ab cd").unwrap();
        assert_eq!(ts[0].position, 0);
        assert_eq!(ts[1].position, 3);
    }
}
