//! The logical query plan: UA queries lowered into a validated operator DAG.
//!
//! The paper evaluates UA queries in two conceptually separate stages: the
//! *parsimonious translation* of the relational operations onto U-relations
//! (Section 3) and the *confidence computation* for `conf` / `σ̂` nodes
//! (Sections 4–6).  [`LogicalPlan`] makes that separation explicit and
//! engine-independent: [`LogicalPlan::lower`] flattens a [`Query`] tree into
//! a topologically ordered DAG of [`PlanNode`]s, merging structurally equal
//! subqueries into a single node (the memoisation the recursive evaluator
//! performed with a string cache — sharing matters semantically, because
//! shared `repair-key` subqueries must share their random variables, cf. the
//! self-join of Example 2.2).
//!
//! Each node carries an [`Accuracy`] annotation with its ε/δ requirements:
//!
//! | operator                    | paper section | accuracy annotation        |
//! |-----------------------------|---------------|----------------------------|
//! | σ, π, ρ, ×, ⋈, ∪, −c        | §2, §3        | [`Accuracy::Exact`]        |
//! | `repair-key`, `poss`, `cert`| §2, §3        | [`Accuracy::Exact`]        |
//! | `conf`                      | §4            | [`Accuracy::Exact`] (the engine may substitute an FPRAS) |
//! | `conf_{ε,δ}`                | §4, Cor. 4.3  | [`Accuracy::Fpras`]        |
//! | `σ̂_{φ(conf[A⃗₁],…)}`        | §5–6          | [`Accuracy::ApproxSelect`] |
//!
//! Physical engines (`engine::physical`, the possible-worlds reference
//! engine, the Theorem 6.7 adaptive driver) are alternative lowerings of the
//! same logical plan; they choose how each annotated node is computed.

use crate::error::{AlgebraError, Result};
use crate::parser::parse_query;
use crate::predicate::Predicate;
use crate::query::{ConfTerm, ProjItem, Query};
use crate::validate::{output_schema, Catalog};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Index of a node inside a [`LogicalPlan`] (also its topological position:
/// every node's inputs have strictly smaller ids).
pub type NodeId = usize;

/// A 128-bit content fingerprint of a sub-plan: two independently seeded
/// 64-bit hashes over its canonical textual form.  A collision would require
/// two distinct sub-plans agreeing on both hashes — vanishingly unlikely —
/// which lets caches address sub-plan results by digest without retaining
/// the text.
pub type SubplanDigest = (u64, u64);

/// The [`SubplanDigest`] of a sub-plan given in canonical textual form (the
/// `Display` form of the subquery, which [`LogicalPlan`] stores as each
/// node's label).
pub fn subplan_digest(canonical_text: &str) -> SubplanDigest {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h1 = DefaultHasher::new();
    canonical_text.hash(&mut h1);
    let mut h2 = DefaultHasher::new();
    0x5bd1_e995_9e37_79b9_u64.hash(&mut h2);
    canonical_text.hash(&mut h2);
    (h1.finish(), h2.finish())
}

/// The accuracy a plan node demands from its physical implementation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Accuracy {
    /// The node's semantics are exact (all per-world relational operators,
    /// and `conf` unless the engine substitutes an FPRAS).
    Exact,
    /// `conf_{ε,δ}`: relative error ε with probability at least `1 − δ`
    /// (Corollary 4.3).
    Fpras {
        /// Relative error ε.
        epsilon: f64,
        /// Error probability δ.
        delta: f64,
    },
    /// `σ̂`: refine to the relative half-width ε₀ and decide with error at
    /// most δ away from ε₀-singularities (Theorem 5.8).
    ApproxSelect {
        /// Smallest relative half-width ε₀ refined to.
        epsilon0: f64,
        /// Per-operator error bound δ.
        delta: f64,
    },
}

/// A logical operator: the [`Query`] constructors with the child pointers
/// factored out into [`PlanNode::inputs`].
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalOp {
    /// A base relation (§2).
    Scan {
        /// Relation name.
        relation: String,
    },
    /// Per-world selection `σ_φ` (§2, translated per §3).
    Select {
        /// Selection predicate.
        predicate: Predicate,
    },
    /// Generalised projection `π` (§2/§3).
    Project {
        /// Output items.
        items: Vec<ProjItem>,
    },
    /// Extension by computed attributes (§2/§3).
    Extend {
        /// Appended items.
        items: Vec<ProjItem>,
    },
    /// Attribute renaming `ρ` (§2/§3).
    Rename {
        /// Attribute to rename.
        from: String,
        /// New attribute name.
        to: String,
    },
    /// Cartesian product `×` (§3 condition-merging translation).
    Product,
    /// Natural join `⋈` (§3).
    NaturalJoin,
    /// Union `∪` (§3).
    Union,
    /// Difference; `checked = false` is the unrestricted `−` outside positive
    /// UA (engines reject it on uncertain inputs), `checked = true` the
    /// complete-input `−c` of Proposition 3.3.
    Difference {
        /// True for the `−c` form restricted to complete inputs.
        checked: bool,
    },
    /// Confidence computation `conf` / `conf_{ε,δ}` (§4); the ε/δ variant is
    /// expressed through the node's [`Accuracy`].
    Conf {
        /// Name of the appended probability attribute.
        prob_attr: String,
    },
    /// Uncertainty introduction `repair-key_{A⃗@B}` (§2/§3).
    RepairKey {
        /// Key attributes.
        key: Vec<String>,
        /// Weight attribute.
        weight: String,
    },
    /// `poss` (§2).
    Poss,
    /// `cert` (§2; the `conf = 1` test, cf. Example 5.7).
    Cert,
    /// Approximate selection `σ̂_{φ(conf[A⃗₁], …)}` (§6); ε₀/δ live in the
    /// node's [`Accuracy`].
    ApproxSelect {
        /// Confidence terms the predicate refers to.
        terms: Vec<ConfTerm>,
        /// Predicate over the term placeholders.
        predicate: Predicate,
    },
}

impl LogicalOp {
    /// A short operator mnemonic for plan rendering.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalOp::Scan { .. } => "scan",
            LogicalOp::Select { .. } => "select",
            LogicalOp::Project { .. } => "project",
            LogicalOp::Extend { .. } => "extend",
            LogicalOp::Rename { .. } => "rename",
            LogicalOp::Product => "product",
            LogicalOp::NaturalJoin => "join",
            LogicalOp::Union => "union",
            LogicalOp::Difference { checked: false } => "diff",
            LogicalOp::Difference { checked: true } => "diffc",
            LogicalOp::Conf { .. } => "conf",
            LogicalOp::RepairKey { .. } => "repair-key",
            LogicalOp::Poss => "poss",
            LogicalOp::Cert => "cert",
            LogicalOp::ApproxSelect { .. } => "approx-select",
        }
    }
}

/// One node of a logical plan.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanNode {
    /// The operator.
    pub op: LogicalOp,
    /// Ids of the input nodes, left to right; always smaller than this
    /// node's own id.
    pub inputs: Vec<NodeId>,
    /// The node's accuracy requirement.
    pub accuracy: Accuracy,
    /// The textual form of the subquery rooted here (the common-subexpression
    /// key, kept for diagnostics and plan rendering).
    pub label: String,
}

/// A validated, topologically ordered operator DAG for one UA query.
///
/// Nodes are stored in evaluation order: iterating `0..len()` and executing
/// each node after its inputs is a correct schedule, and structurally equal
/// subqueries appear exactly once.
#[derive(Clone, Debug, PartialEq)]
pub struct LogicalPlan {
    nodes: Vec<PlanNode>,
    root: NodeId,
}

impl LogicalPlan {
    /// Lowers a query into a plan, performing the structural validation that
    /// needs no catalog: ε/δ parameter ranges and distinct `σ̂` placeholder
    /// names.
    pub fn lower(query: &Query) -> Result<LogicalPlan> {
        let mut builder = Builder {
            nodes: Vec::new(),
            cse: HashMap::new(),
        };
        let root = builder.lower_node(query)?;
        Ok(LogicalPlan {
            nodes: builder.nodes,
            root,
        })
    }

    /// Lowers a query into a plan and additionally validates every attribute
    /// reference and schema constraint against the catalog (the static
    /// analysis of [`crate::validate`]).
    pub fn lower_validated(query: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
        // `output_schema` walks the whole tree and checks predicates,
        // projection expressions, key/weight attributes, union compatibility
        // and σ̂ terms; run it first so errors surface before execution.
        output_schema(query, catalog)?;
        LogicalPlan::lower(query)
    }

    /// The nodes in topological (execution) order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The root (output) node id; always `len() - 1`.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id]
    }

    /// Number of distinct operator nodes (shared subqueries count once).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the plan has no nodes (never produced by `lower`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of the base relations scanned by the plan.
    pub fn scans(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                LogicalOp::Scan { relation } => Some(relation.as_str()),
                _ => None,
            })
            .collect()
    }

    /// For every node, the content digest of the sub-plan rooted there.
    ///
    /// The digest is computed from the node's label — the canonical textual
    /// form of the subquery, which is also the common-subexpression key — so
    /// two structurally equal sub-plans have equal digests *across plans*,
    /// and (up to hash collision, see [`SubplanDigest`]) only those do.
    /// The serving layer uses these digests as the content addresses of its
    /// cross-query snapshot pool: a sub-plan result computed for one
    /// prepared query is found by every other prepared query that contains
    /// the same sub-plan.
    pub fn subplan_digests(&self) -> Vec<SubplanDigest> {
        self.nodes
            .iter()
            .map(|n| subplan_digest(&n.label))
            .collect()
    }

    /// For every node, the set of base relations the sub-plan rooted there
    /// scans (its *relation footprint*).
    ///
    /// A sub-plan's result can only change when one of the relations in its
    /// footprint changes, so footprints are the unit of catalog-aware cache
    /// invalidation: an update to relation `R` invalidates exactly the
    /// cached sub-plan results whose footprint contains `R`.
    pub fn subplan_footprints(&self) -> Vec<BTreeSet<String>> {
        let mut footprints: Vec<BTreeSet<String>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mut fp = BTreeSet::new();
            if let LogicalOp::Scan { relation } = &node.op {
                fp.insert(relation.clone());
            }
            for &input in &node.inputs {
                fp.extend(footprints[input].iter().cloned());
            }
            footprints.push(fp);
        }
        footprints
    }

    /// For every node, the number of plan nodes consuming it (the root
    /// counts one extra consumer: the query output).  Physical engines use
    /// this to move results instead of cloning at a node's last use.
    pub fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for &input in &node.inputs {
                counts[input] += 1;
            }
        }
        counts[self.root] += 1;
        counts
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "LogicalPlan (root = #{})", self.root)?;
        for (id, node) in self.nodes.iter().enumerate() {
            let inputs: Vec<String> = node.inputs.iter().map(|i| format!("#{i}")).collect();
            let accuracy = match node.accuracy {
                Accuracy::Exact => String::new(),
                Accuracy::Fpras { epsilon, delta } => {
                    format!("  [fpras ε={epsilon} δ={delta}]")
                }
                Accuracy::ApproxSelect { epsilon0, delta } => {
                    format!("  [σ̂ ε₀={epsilon0} δ={delta}]")
                }
            };
            writeln!(
                f,
                "  #{id} {}({}){}  ← {}",
                node.op.name(),
                inputs.join(", "),
                accuracy,
                node.label
            )?;
        }
        Ok(())
    }
}

/// Upper bound on cached plan entries (normalized keys plus raw-text
/// aliases); reaching it triggers [`PlanCache`] eviction, so unbounded
/// query-text variety cannot grow a long-running server forever.
const PLAN_CACHE_CAP: usize = 4096;

/// A serving-grade cache of validated logical plans, keyed by *normalized*
/// query text.
///
/// Normalization is the canonical `Display` form of the parsed query (the
/// parser round-trips it), so `conf( project[A]( R ) )` and
/// `conf(project[A](R))` share one entry.  The raw request text is also
/// remembered as an alias, which makes the steady-state lookup for a repeated
/// query a single hash probe — no re-parse, no re-validation, no re-lowering.
///
/// Reaching the capacity evicts in two tiers: raw-text aliases go first
/// (they are pure lookup accelerators — the normalized entry still answers
/// any spelling after one re-parse), and only if the *normalized* entries
/// alone exceed the capacity are unpinned ones dropped.  Entries
/// [`pin`](PlanCache::pin)ned by the caller (e.g. the serving layer's
/// currently-prepared queries) are never evicted, so a workload cycling
/// through many spellings of few queries cannot thrash the plans it is
/// actively serving.
///
/// Plans are handed out as [`Arc`]s so callers (e.g. the engine's serving
/// layer) can hold them across evaluations without cloning node vectors.
#[derive(Clone, Debug)]
pub struct PlanCache {
    /// Normalized text (and raw-text aliases) → shared plan.
    plans: HashMap<String, (Arc<str>, Arc<LogicalPlan>)>,
    /// Normalized keys exempt from eviction.
    pinned: HashSet<Arc<str>>,
    cap: usize,
    hits: u64,
    misses: u64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        PlanCache::with_capacity(PLAN_CACHE_CAP)
    }

    /// Creates an empty cache bounded to `cap` entries (normalized keys plus
    /// raw-text aliases).  Pinned entries may exceed the bound — they are in
    /// active use and dropping them would thrash, not bound, the cache.
    pub fn with_capacity(cap: usize) -> Self {
        PlanCache {
            plans: HashMap::new(),
            pinned: HashSet::new(),
            cap: cap.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Exempts the normalized key from eviction until
    /// [`unpin_all`](PlanCache::unpin_all) or [`clear`](PlanCache::clear).
    /// Callers pin the queries they hold prepared state for, so cache
    /// pressure from one-off spellings cannot drop a hot plan.
    pub fn pin(&mut self, key: &Arc<str>) {
        self.pinned.insert(key.clone());
    }

    /// Clears every pin (e.g. when the caller drops its prepared queries).
    pub fn unpin_all(&mut self) {
        self.pinned.clear();
    }

    /// Two-tier eviction at capacity: aliases first, then unpinned
    /// normalized entries.
    fn evict(&mut self) {
        // Tier 1: drop raw-text aliases (entries stored under a key other
        // than their normalized text).  Hot normalized entries survive, so
        // spelling churn costs at most a re-parse per alias, never a
        // re-validation or re-lowering.
        self.plans
            .retain(|text, (key, _)| text.as_str() == key.as_ref());
        if self.plans.len() >= self.cap {
            // Tier 2: normalized entries alone exceed the capacity; keep
            // only the pinned ones (currently-prepared queries).
            let pinned = &self.pinned;
            self.plans.retain(|_, (key, _)| pinned.contains(key));
        }
    }

    /// Returns the `(normalized key, plan)` for `text`, lowering and
    /// validating against `catalog` on a miss.
    ///
    /// Validation runs only on misses, so the catalog must describe the same
    /// database across calls; callers serving multiple databases should keep
    /// one cache per catalog.
    pub fn get_or_lower(
        &mut self,
        text: &str,
        catalog: &Catalog,
    ) -> Result<(Arc<str>, Arc<LogicalPlan>)> {
        if let Some((key, plan)) = self.plans.get(text) {
            self.hits += 1;
            return Ok((key.clone(), plan.clone()));
        }
        // Bound the map before inserting anything new: machine-generated
        // spellings (whitespace, drifting literals) must not grow a serving
        // process forever.
        if self.plans.len() >= self.cap {
            self.evict();
        }
        let query = parse_query(text)?;
        let normalized = query.to_string();
        if let Some((key, plan)) = self.plans.get(&normalized) {
            // Same query under different spelling: alias the raw text.
            let entry = (key.clone(), plan.clone());
            self.plans.insert(text.to_owned(), entry.clone());
            self.hits += 1;
            return Ok(entry);
        }
        self.misses += 1;
        let plan = Arc::new(LogicalPlan::lower_validated(&query, catalog)?);
        let key: Arc<str> = Arc::from(normalized.as_str());
        let entry = (key.clone(), plan.clone());
        self.plans.insert(normalized, entry.clone());
        if text != key.as_ref() {
            self.plans.insert(text.to_owned(), entry);
        }
        Ok((key, plan))
    }

    /// Number of distinct cached plans (aliases for alternative spellings do
    /// not count).
    pub fn len(&self) -> usize {
        let mut distinct: Vec<*const LogicalPlan> =
            self.plans.values().map(|(_, p)| Arc::as_ptr(p)).collect();
        distinct.sort_unstable();
        distinct.dedup();
        distinct.len()
    }

    /// True if no plan has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to lower a fresh plan.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every cached plan and pin (e.g. after the catalog changed).
    pub fn clear(&mut self) {
        self.plans.clear();
        self.pinned.clear();
    }
}

struct Builder {
    nodes: Vec<PlanNode>,
    /// Common-subexpression elimination: textual subquery → node id.
    cse: HashMap<String, NodeId>,
}

impl Builder {
    fn lower_node(&mut self, query: &Query) -> Result<NodeId> {
        let label = query.to_string();
        if let Some(&id) = self.cse.get(&label) {
            return Ok(id);
        }
        let (op, accuracy, children): (LogicalOp, Accuracy, Vec<&Query>) = match query {
            Query::Table(name) => (
                LogicalOp::Scan {
                    relation: name.clone(),
                },
                Accuracy::Exact,
                vec![],
            ),
            Query::Select { input, predicate } => (
                LogicalOp::Select {
                    predicate: predicate.clone(),
                },
                Accuracy::Exact,
                vec![input],
            ),
            Query::Project { input, items } => (
                LogicalOp::Project {
                    items: items.clone(),
                },
                Accuracy::Exact,
                vec![input],
            ),
            Query::Extend { input, items } => (
                LogicalOp::Extend {
                    items: items.clone(),
                },
                Accuracy::Exact,
                vec![input],
            ),
            Query::Rename { input, from, to } => (
                LogicalOp::Rename {
                    from: from.clone(),
                    to: to.clone(),
                },
                Accuracy::Exact,
                vec![input],
            ),
            Query::Product { left, right } => {
                (LogicalOp::Product, Accuracy::Exact, vec![left, right])
            }
            Query::NaturalJoin { left, right } => {
                (LogicalOp::NaturalJoin, Accuracy::Exact, vec![left, right])
            }
            Query::Union { left, right } => (LogicalOp::Union, Accuracy::Exact, vec![left, right]),
            Query::Difference { left, right } => (
                LogicalOp::Difference { checked: false },
                Accuracy::Exact,
                vec![left, right],
            ),
            Query::DifferenceC { left, right } => (
                LogicalOp::Difference { checked: true },
                Accuracy::Exact,
                vec![left, right],
            ),
            Query::Conf { input, prob_attr } => (
                LogicalOp::Conf {
                    prob_attr: prob_attr.clone(),
                },
                Accuracy::Exact,
                vec![input],
            ),
            Query::ApproxConf {
                input,
                prob_attr,
                epsilon,
                delta,
            } => {
                check_unit_interval("epsilon", *epsilon)?;
                check_unit_interval("delta", *delta)?;
                (
                    LogicalOp::Conf {
                        prob_attr: prob_attr.clone(),
                    },
                    Accuracy::Fpras {
                        epsilon: *epsilon,
                        delta: *delta,
                    },
                    vec![input],
                )
            }
            Query::RepairKey { input, key, weight } => (
                LogicalOp::RepairKey {
                    key: key.clone(),
                    weight: weight.clone(),
                },
                Accuracy::Exact,
                vec![input],
            ),
            Query::Poss { input } => (LogicalOp::Poss, Accuracy::Exact, vec![input]),
            Query::Cert { input } => (LogicalOp::Cert, Accuracy::Exact, vec![input]),
            Query::ApproxSelect {
                input,
                terms,
                predicate,
                epsilon0,
                delta,
            } => {
                check_unit_interval("epsilon0", *epsilon0)?;
                check_unit_interval("delta", *delta)?;
                for (i, t) in terms.iter().enumerate() {
                    if terms[..i].iter().any(|u| u.name == t.name) {
                        return Err(AlgebraError::Invariant(format!(
                            "duplicate confidence-term placeholder `{}`",
                            t.name
                        )));
                    }
                }
                (
                    LogicalOp::ApproxSelect {
                        terms: terms.clone(),
                        predicate: predicate.clone(),
                    },
                    Accuracy::ApproxSelect {
                        epsilon0: *epsilon0,
                        delta: *delta,
                    },
                    vec![input],
                )
            }
        };
        let inputs: Vec<NodeId> = children
            .into_iter()
            .map(|c| self.lower_node(c))
            .collect::<Result<_>>()?;
        let id = self.nodes.len();
        self.nodes.push(PlanNode {
            op,
            inputs,
            accuracy,
            label: label.clone(),
        });
        self.cse.insert(label, id);
        Ok(id)
    }
}

fn check_unit_interval(what: &str, value: f64) -> Result<()> {
    if !(value > 0.0 && value < 1.0) {
        return Err(AlgebraError::InvalidParameter(format!(
            "{what} = {value} must be in (0, 1)"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::parser::parse_query;

    #[test]
    fn shared_subqueries_become_one_node() {
        // The self-join of Example 2.2: R ⋈ R must lower to a DAG in which R
        // appears once, so both sides share repair-key variables downstream.
        let q = parse_query(
            "join(project[CoinType](repairkey[ @ Count](Coins)), \
                  project[CoinType](repairkey[ @ Count](Coins)))",
        )
        .unwrap();
        let plan = LogicalPlan::lower(&q).unwrap();
        // scan, repair-key, project, join — not 7 nodes.
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.root(), plan.len() - 1);
        let join = plan.node(plan.root());
        assert_eq!(join.inputs, vec![2, 2]);
        assert_eq!(plan.scans(), vec!["Coins"]);
    }

    #[test]
    fn nodes_are_topologically_ordered() {
        let q = parse_query(
            "conf(join(project[A](repairkey[ @ W](R)), select[A = 1](project[A](repairkey[ @ W](R)))))",
        )
        .unwrap();
        let plan = LogicalPlan::lower(&q).unwrap();
        for (id, node) in plan.nodes().iter().enumerate() {
            for &input in &node.inputs {
                assert!(input < id, "node #{id} depends on later node #{input}");
            }
        }
        assert_eq!(plan.root(), plan.len() - 1);
    }

    #[test]
    fn accuracy_annotations_follow_the_operators() {
        let q = Query::table("R").project(&["A"]).approx_conf("P", 0.2, 0.1);
        let plan = LogicalPlan::lower(&q).unwrap();
        assert!(matches!(
            plan.node(plan.root()).accuracy,
            Accuracy::Fpras { epsilon, delta } if epsilon == 0.2 && delta == 0.1
        ));

        let q = Query::table("R").approx_select(
            vec![ConfTerm::new("P1", ["A"])],
            Predicate::ge(Expr::attr("P1"), Expr::konst(0.5)),
            0.05,
            0.02,
        );
        let plan = LogicalPlan::lower(&q).unwrap();
        assert!(matches!(
            plan.node(plan.root()).accuracy,
            Accuracy::ApproxSelect { epsilon0, delta } if epsilon0 == 0.05 && delta == 0.02
        ));
    }

    #[test]
    fn invalid_parameters_are_rejected_at_lowering() {
        let q = Query::table("R").approx_conf("P", 0.0, 0.1);
        assert!(matches!(
            LogicalPlan::lower(&q),
            Err(AlgebraError::InvalidParameter(_))
        ));
        let q = Query::table("R").approx_select(
            vec![ConfTerm::new("P1", ["A"]), ConfTerm::new("P1", ["B"])],
            Predicate::ge(Expr::attr("P1"), Expr::konst(0.5)),
            0.05,
            0.02,
        );
        assert!(matches!(
            LogicalPlan::lower(&q),
            Err(AlgebraError::Invariant(_))
        ));
    }

    #[test]
    fn subplan_digests_are_content_addressed_across_plans() {
        // The same sub-query appearing in two different plans gets the same
        // digest; distinct sub-queries get distinct digests.
        let a = LogicalPlan::lower(&parse_query("conf(project[A](repairkey[ @ W](R)))").unwrap())
            .unwrap();
        let b = LogicalPlan::lower(&parse_query("poss(project[A](repairkey[ @ W](R)))").unwrap())
            .unwrap();
        let da = a.subplan_digests();
        let db = b.subplan_digests();
        assert_eq!(da.len(), a.len());
        // scan, repair-key and project agree between the plans…
        assert_eq!(da[0], db[0]);
        assert_eq!(da[1], db[1]);
        assert_eq!(da[2], db[2]);
        // …while the differing roots do not.
        assert_ne!(da[3], db[3]);
        // Digests are unique within a plan (labels are the CSE keys).
        let mut sorted = da.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), da.len());
    }

    #[test]
    fn subplan_footprints_collect_scans() {
        let plan = LogicalPlan::lower(
            &parse_query("conf(join(project[A](R), project[A](join(S, R))))").unwrap(),
        )
        .unwrap();
        let footprints = plan.subplan_footprints();
        // The root sees every scanned relation.
        let root_fp = &footprints[plan.root()];
        assert!(root_fp.contains("R") && root_fp.contains("S"));
        assert_eq!(root_fp.len(), 2);
        // Scan nodes see exactly themselves.
        for (id, node) in plan.nodes().iter().enumerate() {
            if let LogicalOp::Scan { relation } = &node.op {
                assert_eq!(footprints[id].iter().collect::<Vec<_>>(), vec![relation]);
            }
        }
    }

    #[test]
    fn consumer_counts_include_the_output() {
        let q = parse_query("join(R, R)").unwrap();
        let plan = LogicalPlan::lower(&q).unwrap();
        let counts = plan.consumer_counts();
        // R feeds the join twice; the join feeds the output once.
        assert_eq!(counts, vec![2, 1]);
    }

    #[test]
    fn display_renders_every_node() {
        let q = parse_query("conf(project[A](repairkey[ @ W](R)))").unwrap();
        let plan = LogicalPlan::lower(&q).unwrap();
        let text = plan.to_string();
        for name in ["scan", "repair-key", "project", "conf"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn plan_cache_normalizes_and_counts() {
        let mut catalog = Catalog::new();
        catalog.add("R", pdb::Schema::new(["A", "W"]).unwrap(), true);
        let mut cache = PlanCache::new();
        assert!(cache.is_empty());
        let (k1, p1) = cache
            .get_or_lower("conf(project[A](repairkey[ @ W](R)))", &catalog)
            .unwrap();
        assert_eq!(cache.misses(), 1);
        // Exact repeat: pure hash hit.
        let (k2, p2) = cache
            .get_or_lower("conf(project[A](repairkey[ @ W](R)))", &catalog)
            .unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(k1, k2);
        // Different spelling of the same query: normalization aliases it.
        let spaced = "conf( project[A]( repairkey[ @ W]( R ) ) )";
        let (_, p3) = cache.get_or_lower(spaced, &catalog).unwrap();
        assert!(Arc::ptr_eq(&p1, &p3));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
        // A different query is a separate entry.
        cache.get_or_lower("poss(R)", &catalog).unwrap();
        assert_eq!(cache.len(), 2);
        // Invalid queries are not cached.
        assert!(cache.get_or_lower("project[Missing](R)", &catalog).is_err());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn plan_cache_evicts_aliases_before_normalized_entries() {
        // A workload with many spellings of few queries must not thrash:
        // capacity pressure drops the raw-text aliases, never the hot
        // normalized plans.
        let mut catalog = Catalog::new();
        catalog.add("R", pdb::Schema::new(["A", "W"]).unwrap(), true);
        let mut cache = PlanCache::with_capacity(4);
        let (key, hot) = cache.get_or_lower("poss(R)", &catalog).unwrap();
        cache.pin(&key);
        // Spelling churn: every variant aliases the one normalized entry,
        // and crossing the capacity evicts aliases only.
        for pad in 1..=10 {
            let spelled = format!("poss({}R{})", " ".repeat(pad), " ".repeat(pad));
            let (_, p) = cache.get_or_lower(&spelled, &catalog).unwrap();
            assert!(Arc::ptr_eq(&hot, &p), "alias diverged at pad {pad}");
        }
        assert_eq!(cache.len(), 1, "one distinct plan throughout");
        assert_eq!(
            cache.misses(),
            1,
            "spelling churn never re-lowered the hot query"
        );
        assert_eq!(cache.hits(), 10);
        // The normalized entry still answers its canonical spelling with a
        // direct hit after any number of evictions.
        cache.get_or_lower("poss(R)", &catalog).unwrap();
        assert_eq!(cache.misses(), 1);

        // Tier 2: distinct queries beyond the capacity evict unpinned
        // normalized entries but keep the pinned one.
        for i in 0..8 {
            let q = format!("select[A = {i}](R)");
            cache.get_or_lower(&q, &catalog).unwrap();
        }
        let misses = cache.misses();
        let (_, still_hot) = cache.get_or_lower("poss(R)", &catalog).unwrap();
        assert!(
            Arc::ptr_eq(&hot, &still_hot),
            "pinned entry survived tier-2 eviction"
        );
        assert_eq!(cache.misses(), misses, "pinned lookup stayed a hit");
        // Unpinning releases the exemption: the entry may now be evicted.
        cache.unpin_all();
        for i in 8..20 {
            let q = format!("select[A = {i}](R)");
            cache.get_or_lower(&q, &catalog).unwrap();
        }
        let misses = cache.misses();
        cache.get_or_lower("poss(R)", &catalog).unwrap();
        assert_eq!(cache.misses(), misses + 1, "unpinned entry was evicted");
    }

    #[test]
    fn validated_lowering_checks_the_catalog() {
        let mut catalog = Catalog::new();
        catalog.add("R", pdb::Schema::new(["A", "W"]).unwrap(), true);
        let good = parse_query("project[A](repairkey[ @ W](R))").unwrap();
        assert!(LogicalPlan::lower_validated(&good, &catalog).is_ok());
        let bad = parse_query("project[Missing](R)").unwrap();
        assert!(LogicalPlan::lower_validated(&bad, &catalog).is_err());
        let unknown = parse_query("project[A](Nope)").unwrap();
        assert!(LogicalPlan::lower_validated(&unknown, &catalog).is_err());
    }
}
