//! Error type for the UA query language.

use std::fmt;

/// Errors raised while building, validating, parsing or statically analysing
/// UA queries.
#[derive(Clone, Debug, PartialEq)]
pub enum AlgebraError {
    /// An attribute was referenced that the input schema does not provide.
    UnknownAttribute(String),
    /// A relation was referenced that is not in the catalog.
    UnknownRelation(String),
    /// The two inputs of a union/difference are not compatible.
    NotUnionCompatible(String),
    /// An arithmetic expression was applied to a non-numeric value.
    TypeError(String),
    /// Division by zero during expression evaluation.
    DivisionByZero,
    /// A construct appeared that is not allowed in the requested fragment
    /// (e.g. difference inside positive UA).
    NotInFragment(String),
    /// An approximation parameter (ε, δ, ε₀) is outside its legal range.
    InvalidParameter(String),
    /// Error produced by the textual parser, with a position.
    Parse {
        /// Byte offset in the input where the error was detected.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// Error propagated from the data-model layer.
    Pdb(pdb::PdbError),
    /// A schema-level invariant was violated.
    Invariant(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            AlgebraError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            AlgebraError::NotUnionCompatible(m) => write!(f, "not union-compatible: {m}"),
            AlgebraError::TypeError(m) => write!(f, "type error: {m}"),
            AlgebraError::DivisionByZero => write!(f, "division by zero"),
            AlgebraError::NotInFragment(m) => write!(f, "not in the requested fragment: {m}"),
            AlgebraError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            AlgebraError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            AlgebraError::Pdb(e) => write!(f, "{e}"),
            AlgebraError::Invariant(m) => write!(f, "invariant violation: {m}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

impl From<pdb::PdbError> for AlgebraError {
    fn from(e: pdb::PdbError) -> Self {
        AlgebraError::Pdb(e)
    }
}

/// Result alias for the `algebra` crate.
pub type Result<T> = std::result::Result<T, AlgebraError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(AlgebraError::UnknownAttribute("A".into())
            .to_string()
            .contains("`A`"));
        assert!(AlgebraError::Parse {
            position: 7,
            message: "expected `)`".into()
        }
        .to_string()
        .contains("byte 7"));
        let e: AlgebraError = pdb::PdbError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains("`R`"));
    }
}
