//! Serving-performance measurement: emits `BENCH_serving.json`.
//!
//! ```text
//! cargo run --release -p bench --bin serving              # full sizes, writes BENCH_serving.json
//! cargo run --release -p bench --bin serving -- --smoke   # CI smoke: small sizes, prints only
//! cargo run --release -p bench --bin serving -- --out p   # custom output path
//! ```
//!
//! Three experiments, mirroring and extending the `serving_bench` criterion
//! groups:
//!
//! 1. **Repeated-query throughput** — median per-request wall time of the
//!    cold path (parse + validate + lower + execute, per request) vs the
//!    warm serving cache (prepared snapshot, estimation only).
//! 2. **Sharded execution** — the large random-DB join workload at
//!    1/2/4/8 shards, single-batch vs chunked execution.
//! 3. **Mixed workload** — overlapping prepared queries sharing one
//!    deterministic prefix vs the same number of independent queries (the
//!    cross-query snapshot pool executes a shared prefix once), plus
//!    interleaved `update_relations` calls showing catalog-aware
//!    invalidation: a content update to a pure join side keeps every pooled
//!    prefix warm (only the intersecting sub-plans recompute), while an
//!    update to a repair-key input drops exactly the entries whose stateful
//!    spine it feeds.
//! 4. **Delta updates** — the same single-row change to a pure join side
//!    applied as a `RelationDelta` (`apply_deltas`: pooled sub-plan results
//!    patched in place by the incremental operator rules) vs as a full
//!    replacement (`update_relations`: intersecting sub-plans demoted and
//!    recomputed on the next resume) — the re-warm cost of the delta path
//!    is proportional to the delta, not to the sub-plans it touches.
//! 5. **Estimator kernels** — Karp–Luby samples/second of the scalar
//!    reference estimator vs the bit-parallel 64-worlds-per-word kernel on
//!    the `fpras_conf` workload's own lineage programs, plus the resulting
//!    cold/warm `aconf` request latencies from experiment 1.
//! 6. **Storage tier** — join throughput fully resident vs under a spill
//!    budget (chunk outputs routed through digest-verified temporary
//!    segments), and checkpoint write / restore-then-warm-evaluate latency
//!    vs a cold re-prepare of the same query on a fresh engine.
//! 7. **Estimator backends** — kernel samples/second across the block
//!    widths `W ∈ {1, 2, 4}` (64/128/256 lanes per instruction pass), and
//!    d-DNNF compile + weighted-model-count wall time vs FPRAS sampling
//!    wall time on single-literal unions of growing width, annotated with
//!    which backend the cost model picks at the default node budget.
//!
//! The serving engine in experiment 1 runs the full estimation front door —
//! exact d-DNNF backend at the default node budget plus cross-request
//! shared sampling — while the cold path keeps the plain sampled
//! configuration, so the warm/cold gap shows what the backend choice buys a
//! real server.

use algebra::LogicalPlan;
use confidence::{BitKarpLuby, KarpLubyEstimator};
use engine::{catalog_of, CompiledSpace, EvalConfig, ServingEngine, UEngine};
use pdb::{Schema, Tuple, Value};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;
use urel::{UDatabase, URelation};
use workloads::TupleIndependentDb;

/// Median wall-clock of `runs` invocations, in microseconds.
fn median_micros(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct RepeatedQueryResult {
    label: &'static str,
    query: &'static str,
    cold_us: f64,
    warm_us: f64,
    /// Confidences the warm server answered by exact d-DNNF compilation
    /// (0 when the cost model keeps sampling), across the measured runs.
    warm_exact_answers: u64,
    /// Tally-cache hits of the shared block scheduler across the runs.
    warm_shared_hits: u64,
}

fn repeated_query_experiment(num_tuples: usize, runs: usize) -> Vec<RepeatedQueryResult> {
    let db = TupleIndependentDb {
        num_tuples,
        domain_size: 8,
        tuple_probability: None,
        seed: 11,
    }
    .database();
    let catalog = catalog_of(&db).expect("catalog");

    let queries: [(&'static str, &'static str); 2] = [
        ("exact_conf", "conf(project[A](T))"),
        ("fpras_conf", "aconf[0.2, 0.1](project[A](T))"),
    ];
    let mut results = Vec::new();
    for (label, text) in queries {
        let engine = UEngine::new(EvalConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cold_us = median_micros(runs, || {
            let query = algebra::parse_query(text).expect("query parses");
            let plan = LogicalPlan::lower_validated(&query, &catalog).expect("plan lowers");
            engine
                .evaluate_plan(&db, &plan, &mut rng)
                .expect("evaluates");
        });

        // The server runs the full estimation front door: the exact d-DNNF
        // backend at the default node budget plus shared sampling.  The cold
        // reference above keeps the plain sampled configuration.
        let serving_config = EvalConfig::default()
            .with_exact_backend(confidence::cost::DEFAULT_NODE_BUDGET)
            .with_shared_sampling(true);
        let serving = ServingEngine::new(serving_config, db.clone()).expect("server");
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        serving.evaluate(text, &mut rng).expect("prepare");
        let before = serving.stats();
        let warm_us = median_micros(runs, || {
            serving.evaluate(text, &mut rng).expect("warm evaluation");
        });
        let after = serving.stats();

        results.push(RepeatedQueryResult {
            label,
            query: text,
            cold_us,
            warm_us,
            warm_exact_answers: after.exact_compiled_answers - before.exact_compiled_answers,
            warm_shared_hits: after.shared_block_hits - before.shared_block_hits,
        });
    }
    results
}

struct ShardResult {
    shards: usize,
    wall_us: f64,
}

fn sharding_experiment(num_tuples: usize, runs: usize) -> Vec<ShardResult> {
    let db = TupleIndependentDb {
        num_tuples,
        domain_size: 150,
        tuple_probability: Some(0.4),
        seed: 5,
    }
    .database();
    let query = algebra::parse_query("join(project[A, B](T), rename[B -> C](project[A, B](T)))")
        .expect("join query parses");
    let catalog = catalog_of(&db).expect("catalog");
    let plan = LogicalPlan::lower_validated(&query, &catalog).expect("plan lowers");

    [1usize, 2, 4, 8]
        .into_iter()
        .map(|shards| {
            let engine = UEngine::new(EvalConfig::default().with_shards(shards));
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let wall_us = median_micros(runs, || {
                engine
                    .evaluate_plan(&db, &plan, &mut rng)
                    .expect("evaluates");
            });
            ShardResult { shards, wall_us }
        })
        .collect()
}

/// Results of the mixed-workload experiment (overlapping prepared queries +
/// interleaved relation updates).
struct MixedWorkloadResult {
    queries_per_family: usize,
    /// Total wall time of the *first* evaluation of every overlapping query
    /// (they share one deterministic prefix through the snapshot pool).
    overlapping_first_total_us: f64,
    /// Ditto for the independent family (each query runs its own prefix).
    independent_first_total_us: f64,
    overlapping_cold: u64,
    overlapping_shared_hits: u64,
    independent_cold: u64,
    /// Pooled prefix entries backing the overlapping family (1 = shared).
    overlapping_pooled_prefixes: usize,
    /// Median warm latency of a query not scanning the updated relation,
    /// before and after the pure-side update (should be unchanged).
    non_touching_warm_before_us: f64,
    non_touching_warm_after_us: f64,
    /// Median warm latency of the join query after its pure side updated
    /// (recomputes the dropped sub-plans, still warm-path).
    touching_warm_after_us: f64,
    /// Counters of the pure-side update: entries must survive, only
    /// intersecting sub-plans drop.
    pure_update_entries_dropped: u64,
    pure_update_subplans_dropped: u64,
    /// Counters of the spine update (repair-key input): the shared entry
    /// must drop, forcing exactly the R-queries cold again.
    spine_update_entries_dropped: u64,
    cold_after_spine_update: u64,
}

/// `R(K, W)` content: `rows` rows over `keys` distinct keys, weights 1..=5.
fn weighted_rows(rows: usize, keys: usize, salt: u64) -> URelation {
    let mut rel = pdb::Relation::empty(Schema::new(["K", "W"]).expect("schema"));
    for i in 0..rows {
        let k = (i % keys) as i64;
        let w = ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 5 + 1) as i64;
        let _ = rel.insert(Tuple::new(vec![Value::Int(k), Value::Int(w)]));
    }
    URelation::from_complete(&rel)
}

/// `S(K, B)` content: one label row per key.
fn label_rows(keys: usize, salt: i64) -> URelation {
    let mut rel = pdb::Relation::empty(Schema::new(["K", "B"]).expect("schema"));
    for k in 0..keys {
        let _ = rel.insert(Tuple::new(vec![
            Value::Int(k as i64),
            Value::Int((k as i64 + salt) % 7),
        ]));
    }
    URelation::from_complete(&rel)
}

fn mixed_workload_experiment(rows: usize, runs: usize) -> MixedWorkloadResult {
    const FAMILY: usize = 6;
    let keys = (rows / 3).max(2);
    let mut db = UDatabase::new();
    db.set_relation("R", weighted_rows(rows, keys, 1), true);
    db.set_relation("S", label_rows(keys, 3), true);
    db.set_relation("L", label_rows(keys, 5), true);
    for i in 0..FAMILY {
        db.set_relation(
            format!("D{i}"),
            weighted_rows(rows, keys, 10 + i as u64),
            true,
        );
    }

    // Overlapping family: one shared deterministic prefix (repair-key on R
    // joined with S — the expensive part), six different sampling suffixes.
    let shape = |relation: &str, side: &str, i: usize| {
        format!(
            "aconf[{:.2}, 0.2](project[B](join(repairkey[K @ W]({relation}), {side})))",
            0.30 + 0.02 * i as f64
        )
    };
    let overlapping: Vec<String> = (0..FAMILY).map(|i| shape("R", "S", i)).collect();
    // Independent family: the same query shape, each over its own repair-key
    // relation (disjoint stateful spines — nothing shared).
    let independent: Vec<String> = (0..FAMILY)
        .map(|i| shape(&format!("D{i}"), "L", i))
        .collect();

    let serving = ServingEngine::new(EvalConfig::default(), db.clone()).expect("server");
    let mut rng = ChaCha8Rng::seed_from_u64(19);

    let start = Instant::now();
    for q in &overlapping {
        serving
            .evaluate(q, &mut rng)
            .expect("overlapping evaluation");
    }
    let overlapping_first_total_us = start.elapsed().as_secs_f64() * 1e6;
    let after_overlap = serving.stats();
    let overlapping_pooled_prefixes = serving.pooled_prefixes();

    let start = Instant::now();
    for q in &independent {
        serving
            .evaluate(q, &mut rng)
            .expect("independent evaluation");
    }
    let independent_first_total_us = start.elapsed().as_secs_f64() * 1e6;
    let after_indep = serving.stats();

    // Warm latency of a query that does not touch the upcoming update.
    let non_touching_warm_before_us = median_micros(runs, || {
        serving
            .evaluate(&independent[0], &mut rng)
            .expect("warm evaluation");
    });

    // Content update of the pure join side `S`: the shared entry survives
    // (its repair-key spine reads only R), only the S-scanning sub-plans
    // drop, and queries over D0..D5 / L are untouched.
    let before = serving.stats();
    serving
        .update_relations([("S", label_rows(keys, 4))])
        .expect("update S");
    let after = serving.stats();
    let pure_update_entries_dropped = after.snapshots_invalidated - before.snapshots_invalidated;
    let pure_update_subplans_dropped = after.subplans_invalidated - before.subplans_invalidated;
    let non_touching_warm_after_us = median_micros(runs, || {
        serving
            .evaluate(&independent[0], &mut rng)
            .expect("warm evaluation");
    });
    // The touching query recomputes the dropped join once, then is fully
    // warm again; the median over `runs` evaluations reflects mostly the
    // re-warmed steady state.
    let touching_warm_after_us = median_micros(runs, || {
        serving
            .evaluate(&overlapping[0], &mut rng)
            .expect("touching warm evaluation");
    });

    // Spine update: new content for `R` feeds the shared repair-key, so the
    // pooled entry must drop and the R-family re-runs cold.
    let before = serving.stats();
    serving
        .update_relations([("R", weighted_rows(rows, keys, 2))])
        .expect("update R");
    let cold_before = serving.stats().cold_evaluations;
    serving
        .evaluate(&overlapping[0], &mut rng)
        .expect("re-cold evaluation");
    let after = serving.stats();

    MixedWorkloadResult {
        queries_per_family: FAMILY,
        overlapping_first_total_us,
        independent_first_total_us,
        overlapping_cold: after_overlap.cold_evaluations,
        overlapping_shared_hits: after_overlap.shared_prefix_hits,
        independent_cold: after_indep.cold_evaluations - after_overlap.cold_evaluations,
        overlapping_pooled_prefixes,
        non_touching_warm_before_us,
        non_touching_warm_after_us,
        touching_warm_after_us,
        pure_update_entries_dropped,
        pure_update_subplans_dropped,
        spine_update_entries_dropped: after.snapshots_invalidated - before.snapshots_invalidated,
        cold_after_spine_update: after.cold_evaluations - cold_before,
    }
}

/// Results of the delta-update experiment: the same single-row change to a
/// pure join side, shipped as a delta (patch in place) vs as a full
/// replacement (demote and recompute).
struct DeltaUpdateResult {
    rows: usize,
    /// Median wall time of one `apply_deltas` call (single-row delta).
    delta_update_us: f64,
    /// Median warm evaluation right after a patched delta (nothing to
    /// recompute — pure resume cost).
    patched_warm_us: f64,
    /// Median wall time of one `update_relations` call (full replacement
    /// carrying the same single-row change).
    replace_update_us: f64,
    /// Median warm evaluation right after a full replacement (recomputes
    /// the demoted sub-plans during the resume).
    demoted_warm_us: f64,
    /// Counters after the delta runs: every intersecting slot was patched,
    /// none demoted, no entry dropped.
    subplans_patched: u64,
    subplans_demoted: u64,
    /// Counter after the replacement runs: the slots were dropped instead.
    subplans_invalidated: u64,
}

fn delta_update_experiment(rows: usize, runs: usize) -> DeltaUpdateResult {
    let keys = (rows / 3).max(2);
    let mut db = UDatabase::new();
    db.set_relation("R", weighted_rows(rows, keys, 1), true);
    db.set_relation("S", label_rows(keys, 3), true);
    let query = "aconf[0.30, 0.2](project[B](join(repairkey[K @ W](R), S)))";

    // Strategy A: single-row deltas, patched in place.  Each round toggles
    // one fresh S row so every call is a real content change.
    let serving = ServingEngine::new(EvalConfig::default(), db.clone()).expect("server");
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    serving.evaluate(query, &mut rng).expect("prepare");
    let mut delta_update_us = Vec::with_capacity(runs);
    let mut patched_warm_us = Vec::with_capacity(runs);
    for round in 0..runs {
        let old = serving.database().relation("S").expect("S").clone();
        let mut new = old.clone();
        let row = pdb::Tuple::new(vec![Value::Int(0), Value::Int(1000 + round as i64)]);
        new.insert(urel::Condition::always(), row).expect("insert");
        let delta = old.diff(&new).expect("diff");
        let start = Instant::now();
        serving.apply_deltas([("S", delta)]).expect("delta");
        delta_update_us.push(start.elapsed().as_secs_f64() * 1e6);
        let start = Instant::now();
        serving.evaluate(query, &mut rng).expect("patched warm");
        patched_warm_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let delta_stats = serving.stats();

    // Strategy B: the same single-row change as a full replacement — the
    // scan, join and projection sub-plans demote and recompute on resume.
    let serving = ServingEngine::new(EvalConfig::default(), db).expect("server");
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    serving.evaluate(query, &mut rng).expect("prepare");
    let mut replace_update_us = Vec::with_capacity(runs);
    let mut demoted_warm_us = Vec::with_capacity(runs);
    for round in 0..runs {
        let old = serving.database().relation("S").expect("S").clone();
        let mut new = old.clone();
        let row = pdb::Tuple::new(vec![Value::Int(0), Value::Int(1000 + round as i64)]);
        new.insert(urel::Condition::always(), row).expect("insert");
        let start = Instant::now();
        serving.update_relations([("S", new)]).expect("replace");
        replace_update_us.push(start.elapsed().as_secs_f64() * 1e6);
        let start = Instant::now();
        serving.evaluate(query, &mut rng).expect("demoted warm");
        demoted_warm_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let replace_stats = serving.stats();

    let median = |mut samples: Vec<f64>| -> f64 {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    DeltaUpdateResult {
        rows,
        delta_update_us: median(delta_update_us),
        patched_warm_us: median(patched_warm_us),
        replace_update_us: median(replace_update_us),
        demoted_warm_us: median(demoted_warm_us),
        subplans_patched: delta_stats.subplans_patched,
        subplans_demoted: delta_stats.subplans_demoted,
        subplans_invalidated: replace_stats.subplans_invalidated,
    }
}

/// Results of the storage-tier experiment: the spill path's overhead on a
/// join that fits in memory anyway (the price of out-of-core safety), and
/// the restart story — checkpoint write, restore + first warm evaluation,
/// vs re-preparing the same query cold on a fresh engine.
struct StorageResult {
    rows: usize,
    spill_budget_bytes: usize,
    /// Median join evaluation, fully resident (budget 0).
    resident_join_us: f64,
    /// Median join evaluation with chunk outputs spilled through
    /// digest-verified temporary segments.
    spill_join_us: f64,
    /// Median `checkpoint` call over the warmed serving engine.
    checkpoint_write_us: f64,
    /// Median restore-from-checkpoint *plus* first (warm) evaluation.
    restore_warm_us: f64,
    /// Median fresh-engine construction *plus* first (cold) evaluation.
    cold_reprepare_us: f64,
    /// Pool entries the restore re-seeded (sanity: the warm path is real).
    restored_pooled_prefixes: usize,
}

fn storage_experiment(rows: usize, runs: usize) -> StorageResult {
    let keys = (rows / 3).max(2);
    let mut db = UDatabase::new();
    db.set_relation("R", weighted_rows(rows, keys, 1), true);
    db.set_relation("S", label_rows(keys, 3), true);
    let catalog = catalog_of(&db).expect("catalog");
    let join = algebra::parse_query("poss(project[B](join(R, S)))").expect("join parses");
    let plan = LogicalPlan::lower_validated(&join, &catalog).expect("plan lowers");

    let resident = UEngine::new(EvalConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let resident_join_us = median_micros(runs, || {
        resident
            .evaluate_plan(&db, &plan, &mut rng)
            .expect("resident join");
    });
    // A budget small enough that the join's chunk outputs actually spill at
    // these sizes, large enough to stay plausible as a real memory cap.
    let spill_budget_bytes = 4 * 1024;
    let spilling = UEngine::new(EvalConfig::default().with_spill_budget_bytes(spill_budget_bytes));
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let spill_join_us = median_micros(runs, || {
        spilling
            .evaluate_plan(&db, &plan, &mut rng)
            .expect("spilled join");
    });

    // Restart story: warm one stateful query, checkpoint, then compare
    // restore + warm evaluation against fresh-engine + cold evaluation.
    let text = "aconf[0.30, 0.2](project[B](join(repairkey[K @ W](R), S)))";
    let serving = ServingEngine::new(EvalConfig::default(), db.clone()).expect("server");
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    serving
        .evaluate(text, &mut rng)
        .expect("warming evaluation");
    let dir = std::env::temp_dir().join(format!("uadb-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let checkpoint_write_us = median_micros(runs, || {
        serving.checkpoint(&dir).expect("checkpoint");
    });
    let restored = ServingEngine::restore(EvalConfig::default(), &dir).expect("restore");
    let restored_pooled_prefixes = restored.pooled_prefixes();
    let restore_warm_us = median_micros(runs, || {
        let engine = ServingEngine::restore(EvalConfig::default(), &dir).expect("restore");
        let mut rng = ChaCha8Rng::seed_from_u64(37);
        engine.evaluate(text, &mut rng).expect("restored warm");
    });
    let cold_reprepare_us = median_micros(runs, || {
        let engine = ServingEngine::new(EvalConfig::default(), db.clone()).expect("cold engine");
        let mut rng = ChaCha8Rng::seed_from_u64(37);
        engine.evaluate(text, &mut rng).expect("cold evaluation");
    });
    let _ = std::fs::remove_dir_all(&dir);

    StorageResult {
        rows,
        spill_budget_bytes,
        resident_join_us,
        spill_join_us,
        checkpoint_write_us,
        restore_warm_us,
        cold_reprepare_us,
        restored_pooled_prefixes,
    }
}

/// Results of the estimator-kernel experiment: scalar vs bit-parallel
/// Karp–Luby throughput on the `fpras_conf` workload's own lineages.
struct EstimatorResult {
    events: usize,
    /// Samples drawn per event (the Chernoff budget of `aconf[0.2, 0.1]`).
    samples_per_event: usize,
    scalar_samples_per_sec: f64,
    bitparallel_samples_per_sec: f64,
}

fn estimator_experiment(num_tuples: usize) -> EstimatorResult {
    let db = TupleIndependentDb {
        num_tuples,
        domain_size: 8,
        tuple_probability: None,
        seed: 11,
    }
    .database();
    // The exact batch the `fpras_conf` query estimates over: the lineage of
    // project[A](T), extracted and compiled by the engine's own cache.
    let space = CompiledSpace::compile(db.wtable()).expect("compiled space");
    let relation = db.relation("T").expect("relation T");
    let projected =
        engine::ops::project(relation, &[algebra::ProjItem::attr("A")]).expect("projection");
    let lineage = space.relation_events(&projected).expect("lineage batch");
    let programs = lineage.programs();
    let params = confidence::FprasParams::new(0.2, 0.1).expect("params");

    let mut scalar_samples = 0usize;
    let start = Instant::now();
    for event in lineage.events() {
        let m = params.samples_for(event.num_terms()).expect("budget");
        let estimator =
            KarpLubyEstimator::new(event.clone(), space.space().clone()).expect("scalar estimator");
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let _ = estimator.estimate(m, &mut rng).expect("scalar estimate");
        scalar_samples += m;
    }
    let scalar_secs = start.elapsed().as_secs_f64();

    let mut bit_samples = 0usize;
    let start = Instant::now();
    for index in 0..programs.len() {
        let m = params
            .samples_for(programs.num_terms(index))
            .expect("budget");
        let mut kernel = BitKarpLuby::new(programs.clone(), index).expect("bit kernel");
        let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
        let _ = kernel.estimate(m, &mut rng).expect("bit estimate");
        bit_samples += m;
    }
    let bit_secs = start.elapsed().as_secs_f64();

    EstimatorResult {
        events: programs.len(),
        samples_per_event: bit_samples / programs.len().max(1),
        scalar_samples_per_sec: scalar_samples as f64 / scalar_secs.max(1e-9),
        bitparallel_samples_per_sec: bit_samples as f64 / bit_secs.max(1e-9),
    }
}

/// One rung of the width sweep: a single-literal union of `terms`
/// independent Boolean variables, answered both ways.
struct BackendWidthRow {
    terms: usize,
    /// The Chernoff sample budget of `aconf[0.2, 0.1]` at this width.
    samples_budget: usize,
    /// Median d-DNNF compile + weighted model count, microseconds.
    dnnf_us: f64,
    /// One full FPRAS sampling pass on the widest (4-word) kernel,
    /// microseconds.
    fpras_us: f64,
    /// What `cost::choose_backend` picks at the default node budget.
    chosen: &'static str,
}

/// Results of the estimator-backends experiment: kernel throughput per
/// block width, and the compile-vs-sample tradeoff by lineage width.
struct BackendsResult {
    /// Events in the kernel-throughput batch (the `fpras_conf` lineage).
    kernel_events: usize,
    /// `(words, samples_per_sec)` for `W ∈ {1, 2, 4}`.
    kernel: Vec<(usize, f64)>,
    widths: Vec<BackendWidthRow>,
}

fn estimator_backends_experiment(num_tuples: usize, smoke: bool) -> BackendsResult {
    use std::sync::Arc;

    let db = TupleIndependentDb {
        num_tuples,
        domain_size: 8,
        tuple_probability: None,
        seed: 11,
    }
    .database();
    let space = CompiledSpace::compile(db.wtable()).expect("compiled space");
    let relation = db.relation("T").expect("relation T");
    let projected =
        engine::ops::project(relation, &[algebra::ProjItem::attr("A")]).expect("projection");
    let lineage = space.relation_events(&projected).expect("lineage batch");
    let programs = lineage.programs();
    let params = confidence::FprasParams::new(0.2, 0.1).expect("params");

    // Kernel throughput per block width on the serving workload's own
    // lineage: same Chernoff budget, same seed, 64/128/256 lanes per pass.
    let mut kernel = Vec::new();
    for words in [1usize, 2, 4] {
        let mut samples = 0usize;
        let start = Instant::now();
        for index in 0..programs.len() {
            let m = params
                .samples_for(programs.num_terms(index))
                .expect("budget");
            let mut k =
                BitKarpLuby::new_with_width(programs.clone(), index, words).expect("kernel");
            let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
            let _ = k.estimate(m, &mut rng).expect("estimate");
            samples += m;
        }
        let secs = start.elapsed().as_secs_f64();
        kernel.push((words, samples as f64 / secs.max(1e-9)));
    }

    // Compile-vs-sample by lineage width: single-literal unions of `w`
    // independent p = 0.5 coins — the d-DNNF is a linear decision chain, so
    // compile + WMC stays flat while the Chernoff sample bill grows with w.
    let widths: &[usize] = if smoke {
        &[4, 16, 64]
    } else {
        &[4, 16, 64, 256]
    };
    let rows = widths
        .iter()
        .map(|&w| {
            let mut event_space = confidence::ProbabilitySpace::new();
            let terms: Vec<confidence::Assignment> = (0..w)
                .map(|_| {
                    let v = event_space.add_bool_variable(0.5).expect("variable");
                    confidence::Assignment::new([(v, 0)]).expect("literal")
                })
                .collect();
            let event = confidence::DnfEvent::new(terms);
            let programs = Arc::new(
                confidence::LineagePrograms::compile(vec![event.clone()], &event_space)
                    .expect("compile"),
            );
            let m = params.samples_for(w).expect("budget");
            let budget = confidence::cost::DEFAULT_NODE_BUDGET;
            let chosen =
                match confidence::cost::choose_backend(programs.dnnf_estimate(0), m as u64, budget)
                {
                    confidence::Backend::Exact => "exact",
                    confidence::Backend::Sample => "sample",
                };
            let dnnf_us = median_micros(9, || {
                let _ = confidence::dnnf::probability(&event, &event_space, budget)
                    .expect("d-DNNF probability");
            });
            let mut k = BitKarpLuby::new_with_width(programs.clone(), 0, 4).expect("kernel");
            let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
            let start = Instant::now();
            let _ = k.estimate(m, &mut rng).expect("estimate");
            let fpras_us = start.elapsed().as_secs_f64() * 1e6;
            BackendWidthRow {
                terms: w,
                samples_budget: m,
                dnnf_us,
                fpras_us,
                chosen,
            }
        })
        .collect();

    BackendsResult {
        kernel_events: programs.len(),
        kernel,
        widths: rows,
    }
}

#[allow(clippy::too_many_arguments)] // one positional slot per experiment section
fn render_json(
    smoke: bool,
    repeated: &[RepeatedQueryResult],
    shards: &[ShardResult],
    mixed: &MixedWorkloadResult,
    delta: &DeltaUpdateResult,
    storage: &StorageResult,
    estimator: &EstimatorResult,
    backends: &BackendsResult,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"generated_by\": \"cargo run --release -p bench --bin serving\","
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    // The machine's real thread budget, straight from the OS (the rayon
    // shim's view can be narrower than the hardware).
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    let _ = writeln!(out, "  \"repeated_query\": [");
    for (i, r) in repeated.iter().enumerate() {
        let comma = if i + 1 < repeated.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"query\": \"{}\", \"cold_us\": {:.1}, \"warm_us\": {:.1}, \"speedup\": {:.2}, \"warm_exact_answers\": {}, \"warm_shared_hits\": {}}}{comma}",
            r.label,
            r.query,
            r.cold_us,
            r.warm_us,
            r.cold_us / r.warm_us.max(1e-9),
            r.warm_exact_answers,
            r.warm_shared_hits
        );
    }
    let _ = writeln!(out, "  ],");
    let single = shards
        .iter()
        .find(|s| s.shards == 1)
        .map(|s| s.wall_us)
        .unwrap_or(f64::NAN);
    let four = shards
        .iter()
        .find(|s| s.shards == 4)
        .map(|s| s.wall_us)
        .unwrap_or(f64::NAN);
    let _ = writeln!(out, "  \"sharded_join\": {{");
    let _ = writeln!(
        out,
        "    \"workload\": \"random-db self-join on A (tuple-independent T, domain 150)\","
    );
    let _ = writeln!(out, "    \"results\": [");
    for (i, s) in shards.iter().enumerate() {
        let comma = if i + 1 < shards.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"shards\": {}, \"wall_us\": {:.1}}}{comma}",
            s.shards, s.wall_us
        );
    }
    let _ = writeln!(out, "    ],");
    let _ = writeln!(
        out,
        "    \"speedup_4_shards_vs_single_batch\": {:.2}",
        single / four.max(1e-9)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"mixed_workload\": {{");
    let _ = writeln!(
        out,
        "    \"workload\": \"{} aconf variants sharing one repair-key + join prefix on R x S \
         vs {} identical-shape queries over disjoint relations Di x L, with interleaved \
         relation updates (pure join side S, then repair-key input R)\",",
        mixed.queries_per_family, mixed.queries_per_family
    );
    let _ = writeln!(
        out,
        "    \"overlapping\": {{\"queries\": {}, \"first_eval_total_us\": {:.1}, \
         \"cold_evaluations\": {}, \"shared_prefix_hits\": {}, \"pooled_prefixes\": {}}},",
        mixed.queries_per_family,
        mixed.overlapping_first_total_us,
        mixed.overlapping_cold,
        mixed.overlapping_shared_hits,
        mixed.overlapping_pooled_prefixes
    );
    let _ = writeln!(
        out,
        "    \"independent\": {{\"queries\": {}, \"first_eval_total_us\": {:.1}, \
         \"cold_evaluations\": {}}},",
        mixed.queries_per_family, mixed.independent_first_total_us, mixed.independent_cold
    );
    let _ = writeln!(
        out,
        "    \"sharing_speedup_first_eval\": {:.2},",
        mixed.independent_first_total_us / mixed.overlapping_first_total_us.max(1e-9)
    );
    let _ = writeln!(
        out,
        "    \"pure_side_update\": {{\"updated\": \"S\", \"entries_dropped\": {}, \
         \"subplans_dropped\": {}, \"non_touching_warm_before_us\": {:.1}, \
         \"non_touching_warm_after_us\": {:.1}, \"touching_warm_after_us\": {:.1}}},",
        mixed.pure_update_entries_dropped,
        mixed.pure_update_subplans_dropped,
        mixed.non_touching_warm_before_us,
        mixed.non_touching_warm_after_us,
        mixed.touching_warm_after_us
    );
    let _ = writeln!(
        out,
        "    \"spine_update\": {{\"updated\": \"R\", \"entries_dropped\": {}, \
         \"cold_evaluations_after\": {}}}",
        mixed.spine_update_entries_dropped, mixed.cold_after_spine_update
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"delta_update\": {{");
    let _ = writeln!(
        out,
        "    \"workload\": \"single-row change to the pure join side S of \
         aconf(project(join(repairkey(R), S))) over {} R-rows, shipped as a RelationDelta \
         (apply_deltas patches the scan/join/projection slots in place) vs as a full \
         replacement (update_relations demotes them for recomputation on the next resume)\",",
        delta.rows
    );
    let _ = writeln!(
        out,
        "    \"patched\": {{\"update_us\": {:.1}, \"warm_after_us\": {:.1}, \
         \"subplans_patched\": {}, \"subplans_demoted\": {}}},",
        delta.delta_update_us,
        delta.patched_warm_us,
        delta.subplans_patched,
        delta.subplans_demoted
    );
    let _ = writeln!(
        out,
        "    \"demoted\": {{\"update_us\": {:.1}, \"warm_after_us\": {:.1}, \
         \"subplans_invalidated\": {}}},",
        delta.replace_update_us, delta.demoted_warm_us, delta.subplans_invalidated
    );
    let _ = writeln!(
        out,
        "    \"rewarm_speedup_update_plus_eval\": {:.2}",
        (delta.replace_update_us + delta.demoted_warm_us)
            / (delta.delta_update_us + delta.patched_warm_us).max(1e-9)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"storage\": {{");
    let _ = writeln!(
        out,
        "    \"workload\": \"poss(project(join(R, S))) over {} R-rows resident vs under a \
         {}-byte spill budget (chunk outputs through digest-verified temp segments), plus \
         checkpoint/restore of a warmed aconf(join(repairkey(R), S)) server vs a cold \
         re-prepare\",",
        storage.rows, storage.spill_budget_bytes
    );
    let _ = writeln!(
        out,
        "    \"join\": {{\"resident_us\": {:.1}, \"spill_us\": {:.1}, \
         \"spill_overhead\": {:.2}}},",
        storage.resident_join_us,
        storage.spill_join_us,
        storage.spill_join_us / storage.resident_join_us.max(1e-9)
    );
    let _ = writeln!(
        out,
        "    \"checkpoint\": {{\"write_us\": {:.1}, \"restore_plus_warm_eval_us\": {:.1}, \
         \"cold_engine_plus_eval_us\": {:.1}, \"restored_pooled_prefixes\": {}, \
         \"restore_speedup_vs_cold\": {:.2}}}",
        storage.checkpoint_write_us,
        storage.restore_warm_us,
        storage.cold_reprepare_us,
        storage.restored_pooled_prefixes,
        storage.cold_reprepare_us / storage.restore_warm_us.max(1e-9)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"estimator\": {{");
    let _ = writeln!(
        out,
        "    \"workload\": \"Karp-Luby sampling over the fpras_conf lineage batch \
         ({} events, {} samples each): the scalar per-world reference estimator vs the \
         bit-parallel 64-worlds-per-word kernel over compiled lineage programs\",",
        estimator.events, estimator.samples_per_event
    );
    let _ = writeln!(
        out,
        "    \"scalar_samples_per_sec\": {:.0},",
        estimator.scalar_samples_per_sec
    );
    let _ = writeln!(
        out,
        "    \"bitparallel_samples_per_sec\": {:.0},",
        estimator.bitparallel_samples_per_sec
    );
    let _ = writeln!(
        out,
        "    \"kernel_speedup\": {:.2},",
        estimator.bitparallel_samples_per_sec / estimator.scalar_samples_per_sec.max(1e-9)
    );
    let aconf = repeated.iter().find(|r| r.label == "fpras_conf");
    let _ = writeln!(
        out,
        "    \"aconf_cold_us\": {:.1},",
        aconf.map_or(f64::NAN, |r| r.cold_us)
    );
    let _ = writeln!(
        out,
        "    \"aconf_warm_us\": {:.1}",
        aconf.map_or(f64::NAN, |r| r.warm_us)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"estimator_backends\": {{");
    let _ = writeln!(
        out,
        "    \"workload\": \"kernel throughput per block width over the fpras_conf lineage \
         batch ({} events), and d-DNNF compile+WMC vs one full FPRAS sampling pass on \
         single-literal unions of growing width (aconf[0.2, 0.1] Chernoff budgets, default \
         node budget {})\",",
        backends.kernel_events,
        confidence::cost::DEFAULT_NODE_BUDGET
    );
    let _ = writeln!(out, "    \"kernel_samples_per_sec\": [");
    for (i, (words, rate)) in backends.kernel.iter().enumerate() {
        let comma = if i + 1 < backends.kernel.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "      {{\"words\": {}, \"lanes\": {}, \"samples_per_sec\": {:.0}}}{comma}",
            words,
            words * 64,
            rate
        );
    }
    let _ = writeln!(out, "    ],");
    let _ = writeln!(out, "    \"compile_vs_sample\": [");
    for (i, row) in backends.widths.iter().enumerate() {
        let comma = if i + 1 < backends.widths.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "      {{\"terms\": {}, \"samples_budget\": {}, \"dnnf_us\": {:.1}, \
             \"fpras_us\": {:.1}, \"cost_model_picks\": \"{}\"}}{comma}",
            row.terms, row.samples_budget, row.dnnf_us, row.fpras_us, row.chosen
        );
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());

    let (serving_tuples, join_tuples, mixed_rows, runs) = if smoke {
        (80, 200, 60, 5)
    } else {
        (800, 1500, 600, 11)
    };
    let repeated = repeated_query_experiment(serving_tuples, runs);
    let shards = sharding_experiment(join_tuples, runs);
    let mixed = mixed_workload_experiment(mixed_rows, runs);
    let delta = delta_update_experiment(mixed_rows, runs);
    let storage = storage_experiment(mixed_rows, runs);
    let estimator = estimator_experiment(serving_tuples);
    let backends = estimator_backends_experiment(serving_tuples, smoke);
    let json = render_json(
        smoke, &repeated, &shards, &mixed, &delta, &storage, &estimator, &backends,
    );
    print!("{json}");

    for r in &repeated {
        eprintln!(
            "repeated {}: cold {:.0} us, warm {:.0} us ({:.1}x)",
            r.label,
            r.cold_us,
            r.warm_us,
            r.cold_us / r.warm_us.max(1e-9)
        );
    }
    if let (Some(single), Some(four)) = (
        shards.iter().find(|s| s.shards == 1),
        shards.iter().find(|s| s.shards == 4),
    ) {
        eprintln!(
            "sharded join: 1 shard {:.0} us, 4 shards {:.0} us ({:.1}x)",
            single.wall_us,
            four.wall_us,
            single.wall_us / four.wall_us.max(1e-9)
        );
    }

    eprintln!(
        "mixed workload: overlapping first-evals {:.0} us total ({} cold, {} shared) vs \
         independent {:.0} us total ({} cold) — {:.1}x",
        mixed.overlapping_first_total_us,
        mixed.overlapping_cold,
        mixed.overlapping_shared_hits,
        mixed.independent_first_total_us,
        mixed.independent_cold,
        mixed.independent_first_total_us / mixed.overlapping_first_total_us.max(1e-9)
    );
    eprintln!(
        "updates: S-update dropped {} entries / {} sub-plans (non-touching warm {:.0} -> {:.0} us, \
         touching {:.0} us); R-update dropped {} entries ({} re-cold)",
        mixed.pure_update_entries_dropped,
        mixed.pure_update_subplans_dropped,
        mixed.non_touching_warm_before_us,
        mixed.non_touching_warm_after_us,
        mixed.touching_warm_after_us,
        mixed.spine_update_entries_dropped,
        mixed.cold_after_spine_update
    );
    eprintln!(
        "delta update: patched {:.0}+{:.0} us (update+warm, {} slots patched) vs \
         demoted {:.0}+{:.0} us ({} slots dropped) — {:.1}x",
        delta.delta_update_us,
        delta.patched_warm_us,
        delta.subplans_patched,
        delta.replace_update_us,
        delta.demoted_warm_us,
        delta.subplans_invalidated,
        (delta.replace_update_us + delta.demoted_warm_us)
            / (delta.delta_update_us + delta.patched_warm_us).max(1e-9)
    );

    eprintln!(
        "storage: join resident {:.0} us vs spilled {:.0} us ({:.2}x overhead); \
         checkpoint write {:.0} us, restore+warm {:.0} us vs cold re-prepare {:.0} us \
         ({:.1}x, {} prefixes re-seeded)",
        storage.resident_join_us,
        storage.spill_join_us,
        storage.spill_join_us / storage.resident_join_us.max(1e-9),
        storage.checkpoint_write_us,
        storage.restore_warm_us,
        storage.cold_reprepare_us,
        storage.cold_reprepare_us / storage.restore_warm_us.max(1e-9),
        storage.restored_pooled_prefixes
    );

    eprintln!(
        "estimator kernels: scalar {:.2} M samples/s vs bit-parallel {:.2} M samples/s \
         ({:.1}x) over {} events x {} samples",
        estimator.scalar_samples_per_sec / 1e6,
        estimator.bitparallel_samples_per_sec / 1e6,
        estimator.bitparallel_samples_per_sec / estimator.scalar_samples_per_sec.max(1e-9),
        estimator.events,
        estimator.samples_per_event
    );

    for (words, rate) in &backends.kernel {
        eprintln!(
            "backend kernel: {} words ({} lanes) {:.2} M samples/s",
            words,
            words * 64,
            rate / 1e6
        );
    }
    for row in &backends.widths {
        eprintln!(
            "backend width {}: d-DNNF {:.0} us vs FPRAS {:.0} us ({} samples) — cost model \
             picks {}",
            row.terms, row.dnnf_us, row.fpras_us, row.samples_budget, row.chosen
        );
    }

    if !smoke {
        let path = out_path.unwrap_or_else(|| "BENCH_serving.json".to_string());
        std::fs::write(&path, &json).expect("write BENCH_serving.json");
        eprintln!("wrote {path}");
    }
}
