//! Serving-performance measurement: emits `BENCH_serving.json`.
//!
//! ```text
//! cargo run --release -p bench --bin serving              # full sizes, writes BENCH_serving.json
//! cargo run --release -p bench --bin serving -- --smoke   # CI smoke: small sizes, prints only
//! cargo run --release -p bench --bin serving -- --out p   # custom output path
//! ```
//!
//! Two experiments, mirroring the `serving_bench` criterion groups:
//!
//! 1. **Repeated-query throughput** — median per-request wall time of the
//!    cold path (parse + validate + lower + execute, per request) vs the
//!    warm serving cache (prepared snapshot, estimation only).
//! 2. **Sharded execution** — the large random-DB join workload at
//!    1/2/4/8 shards, single-batch vs chunked execution.

use algebra::LogicalPlan;
use engine::{catalog_of, EvalConfig, ServingEngine, UEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;
use workloads::TupleIndependentDb;

/// Median wall-clock of `runs` invocations, in microseconds.
fn median_micros(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct RepeatedQueryResult {
    label: &'static str,
    query: &'static str,
    cold_us: f64,
    warm_us: f64,
}

fn repeated_query_experiment(num_tuples: usize, runs: usize) -> Vec<RepeatedQueryResult> {
    let db = TupleIndependentDb {
        num_tuples,
        domain_size: 8,
        tuple_probability: None,
        seed: 11,
    }
    .database();
    let catalog = catalog_of(&db).expect("catalog");

    let queries: [(&'static str, &'static str); 2] = [
        ("exact_conf", "conf(project[A](T))"),
        ("fpras_conf", "aconf[0.2, 0.1](project[A](T))"),
    ];
    let mut results = Vec::new();
    for (label, text) in queries {
        let engine = UEngine::new(EvalConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cold_us = median_micros(runs, || {
            let query = algebra::parse_query(text).expect("query parses");
            let plan = LogicalPlan::lower_validated(&query, &catalog).expect("plan lowers");
            engine
                .evaluate_plan(&db, &plan, &mut rng)
                .expect("evaluates");
        });

        let mut serving = ServingEngine::new(EvalConfig::default(), db.clone()).expect("server");
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        serving.evaluate(text, &mut rng).expect("prepare");
        let warm_us = median_micros(runs, || {
            serving.evaluate(text, &mut rng).expect("warm evaluation");
        });

        results.push(RepeatedQueryResult {
            label,
            query: text,
            cold_us,
            warm_us,
        });
    }
    results
}

struct ShardResult {
    shards: usize,
    wall_us: f64,
}

fn sharding_experiment(num_tuples: usize, runs: usize) -> Vec<ShardResult> {
    let db = TupleIndependentDb {
        num_tuples,
        domain_size: 150,
        tuple_probability: Some(0.4),
        seed: 5,
    }
    .database();
    let query = algebra::parse_query("join(project[A, B](T), rename[B -> C](project[A, B](T)))")
        .expect("join query parses");
    let catalog = catalog_of(&db).expect("catalog");
    let plan = LogicalPlan::lower_validated(&query, &catalog).expect("plan lowers");

    [1usize, 2, 4, 8]
        .into_iter()
        .map(|shards| {
            let engine = UEngine::new(EvalConfig::default().with_shards(shards));
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let wall_us = median_micros(runs, || {
                engine
                    .evaluate_plan(&db, &plan, &mut rng)
                    .expect("evaluates");
            });
            ShardResult { shards, wall_us }
        })
        .collect()
}

fn render_json(smoke: bool, repeated: &[RepeatedQueryResult], shards: &[ShardResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"generated_by\": \"cargo run --release -p bench --bin serving\","
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"host_threads\": {},", rayon::current_num_threads());
    let _ = writeln!(out, "  \"repeated_query\": [");
    for (i, r) in repeated.iter().enumerate() {
        let comma = if i + 1 < repeated.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"query\": \"{}\", \"cold_us\": {:.1}, \"warm_us\": {:.1}, \"speedup\": {:.2}}}{comma}",
            r.label,
            r.query,
            r.cold_us,
            r.warm_us,
            r.cold_us / r.warm_us.max(1e-9)
        );
    }
    let _ = writeln!(out, "  ],");
    let single = shards
        .iter()
        .find(|s| s.shards == 1)
        .map(|s| s.wall_us)
        .unwrap_or(f64::NAN);
    let four = shards
        .iter()
        .find(|s| s.shards == 4)
        .map(|s| s.wall_us)
        .unwrap_or(f64::NAN);
    let _ = writeln!(out, "  \"sharded_join\": {{");
    let _ = writeln!(
        out,
        "    \"workload\": \"random-db self-join on A (tuple-independent T, domain 150)\","
    );
    let _ = writeln!(out, "    \"results\": [");
    for (i, s) in shards.iter().enumerate() {
        let comma = if i + 1 < shards.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"shards\": {}, \"wall_us\": {:.1}}}{comma}",
            s.shards, s.wall_us
        );
    }
    let _ = writeln!(out, "    ],");
    let _ = writeln!(
        out,
        "    \"speedup_4_shards_vs_single_batch\": {:.2}",
        single / four.max(1e-9)
    );
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());

    let (serving_tuples, join_tuples, runs) = if smoke { (80, 200, 5) } else { (800, 1500, 11) };
    let repeated = repeated_query_experiment(serving_tuples, runs);
    let shards = sharding_experiment(join_tuples, runs);
    let json = render_json(smoke, &repeated, &shards);
    print!("{json}");

    for r in &repeated {
        eprintln!(
            "repeated {}: cold {:.0} us, warm {:.0} us ({:.1}x)",
            r.label,
            r.cold_us,
            r.warm_us,
            r.cold_us / r.warm_us.max(1e-9)
        );
    }
    if let (Some(single), Some(four)) = (
        shards.iter().find(|s| s.shards == 1),
        shards.iter().find(|s| s.shards == 4),
    ) {
        eprintln!(
            "sharded join: 1 shard {:.0} us, 4 shards {:.0} us ({:.1}x)",
            single.wall_us,
            four.wall_us,
            single.wall_us / four.wall_us.max(1e-9)
        );
    }

    if !smoke {
        let path = out_path.unwrap_or_else(|| "BENCH_serving.json".to_string());
        std::fs::write(&path, &json).expect("write BENCH_serving.json");
        eprintln!("wrote {path}");
    }
}
