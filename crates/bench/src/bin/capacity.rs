//! Closed-loop capacity measurement for the concurrent serving front door:
//! emits `BENCH_capacity.json`.
//!
//! ```text
//! cargo run --release -p bench --bin capacity              # full sizes, writes BENCH_capacity.json
//! cargo run --release -p bench --bin capacity -- --smoke   # CI smoke: small sizes, prints only
//! cargo run --release -p bench --bin capacity -- --out p   # custom output path
//! ```
//!
//! Workloads are declarative: a [`WorkloadSpec`] names a query-shape mix
//! (with weights), a session count and an update cadence.  For each spec the
//! harness measures three phases against one shared [`ServingEngine`]:
//!
//! 1. **Single-session baseline** — one closed-loop session issuing requests
//!    back-to-back; its throughput anchors every later comparison.
//! 2. **Concurrent closed loop** — `sessions` closed-loop sessions over the
//!    same engine (plus the updater thread, if the spec has one); the
//!    speedup over phase 1 is the concurrency payoff at this host's core
//!    count, recorded honestly — on a single-core host it is ≈ 1×.
//! 3. **RPS ramp** — open-loop arrivals paced across the sessions at a
//!    target rate that steps up per iteration; each iteration records
//!    offered vs achieved RPS and p50/p99 latency measured from the
//!    *scheduled* arrival time (so queueing delay is not hidden by
//!    coordinated omission).  Ramp requests carry a per-request deadline
//!    and every resolution is classified (`ok` / `degraded` / `shed` /
//!    `timeout` / `errors`) per iteration; only full answers count toward
//!    achieved RPS.  The ramp stops at the first saturated iteration
//!    (achieved < 90% of offered); the last unsaturated iteration's
//!    achieved RPS is the reported capacity.

use engine::{EngineError, EvalConfig, Request, ServingAnswer, ServingEngine, ServingSession};
use pdb::{Schema, Tuple, Value};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use urel::{UDatabase, URelation};

/// One query shape of a workload mix.
struct QueryShape {
    label: &'static str,
    weight: usize,
    text: &'static str,
}

/// A declarative workload description: what the sessions ask, how many of
/// them there are, and how often the database changes underneath them.
struct WorkloadSpec {
    name: &'static str,
    description: &'static str,
    /// `R` row count (keys scale with it); the knob for per-request cost.
    rows: usize,
    /// Concurrent closed-loop sessions in phases 2 and 3.
    sessions: usize,
    /// Query mix, drawn round-robin by weight.
    mix: Vec<QueryShape>,
    /// Single-row delta updates to the pure join side `S` every interval
    /// (none = read-only workload).
    update_interval: Option<Duration>,
}

fn join_conf() -> &'static str {
    "conf(project[B](join(repairkey[K @ W](R), S)))"
}

fn join_aconf() -> &'static str {
    "aconf[0.30, 0.2](project[B](join(repairkey[K @ W](R), S)))"
}

fn point_conf() -> &'static str {
    "conf(project[K](repairkey[K @ W](R)))"
}

fn workloads(smoke: bool) -> Vec<WorkloadSpec> {
    let rows = if smoke { 45 } else { 180 };
    vec![
        WorkloadSpec {
            name: "warm_reads",
            description: "read-only mix of one exact and one FPRAS confidence \
                          query sharing a repair-key + join prefix",
            rows,
            sessions: 4,
            mix: vec![
                QueryShape {
                    label: "exact_join_conf",
                    weight: 3,
                    text: join_conf(),
                },
                QueryShape {
                    label: "fpras_join_aconf",
                    weight: 1,
                    text: join_aconf(),
                },
            ],
            update_interval: None,
        },
        WorkloadSpec {
            name: "reads_with_updates",
            description: "the warm_reads mix with a single-row delta to the \
                          pure join side S every 25 ms (patched in place, \
                          queries stay warm)",
            rows,
            sessions: 4,
            mix: vec![
                QueryShape {
                    label: "exact_join_conf",
                    weight: 3,
                    text: join_conf(),
                },
                QueryShape {
                    label: "fpras_join_aconf",
                    weight: 1,
                    text: join_aconf(),
                },
            ],
            update_interval: Some(Duration::from_millis(25)),
        },
        WorkloadSpec {
            name: "oversubscribed",
            description: "8 sessions (more than the admission gate's default \
                          in-flight budget on small hosts) over a three-shape \
                          mix including a cheap point query",
            rows,
            sessions: 8,
            mix: vec![
                QueryShape {
                    label: "exact_join_conf",
                    weight: 2,
                    text: join_conf(),
                },
                QueryShape {
                    label: "fpras_join_aconf",
                    weight: 1,
                    text: join_aconf(),
                },
                QueryShape {
                    label: "point_conf",
                    weight: 3,
                    text: point_conf(),
                },
            ],
            update_interval: None,
        },
    ]
}

/// `R(K, W)` content: `rows` rows over `keys` distinct keys, weights 1..=5.
fn weighted_rows(rows: usize, keys: usize, salt: u64) -> URelation {
    let mut rel = pdb::Relation::empty(Schema::new(["K", "W"]).expect("schema"));
    for i in 0..rows {
        let k = (i % keys) as i64;
        let w = ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 5 + 1) as i64;
        let _ = rel.insert(Tuple::new(vec![Value::Int(k), Value::Int(w)]));
    }
    URelation::from_complete(&rel)
}

/// `S(K, B)` content: one label row per key.
fn label_rows(keys: usize, salt: i64) -> URelation {
    let mut rel = pdb::Relation::empty(Schema::new(["K", "B"]).expect("schema"));
    for k in 0..keys {
        let _ = rel.insert(Tuple::new(vec![
            Value::Int(k as i64),
            Value::Int((k as i64 + salt) % 7),
        ]));
    }
    URelation::from_complete(&rel)
}

fn database(rows: usize) -> UDatabase {
    let keys = (rows / 3).max(2);
    let mut db = UDatabase::new();
    db.set_relation("R", weighted_rows(rows, keys, 1), true);
    db.set_relation("S", label_rows(keys, 3), true);
    db
}

/// The request schedule of a mix: shape indices repeated by weight, so a
/// round-robin walk reproduces the weights without randomness.
fn schedule_of(mix: &[QueryShape]) -> Vec<usize> {
    let mut schedule = Vec::new();
    for (i, shape) in mix.iter().enumerate() {
        schedule.extend(std::iter::repeat_n(i, shape.weight));
    }
    schedule
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Per-outcome request counts of one measurement window.  Every request
/// resolves to exactly one bucket; only `ok` (full answers) counts toward
/// throughput and latency percentiles.
#[derive(Clone, Copy, Default)]
struct Outcomes {
    /// Full answers.
    ok: u64,
    /// Bounds-degraded answers (deadline expired mid-sampling, or the
    /// admission queue was saturated past its queue deadline).
    degraded: u64,
    /// Shed by the admission gate (`Overloaded`) with retries exhausted.
    shed: u64,
    /// Request deadline exceeded (tagged with the stage that noticed).
    timeout: u64,
    /// Any other engine error.
    errors: u64,
}

impl Outcomes {
    fn absorb(&mut self, other: Outcomes) {
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.timeout += other.timeout;
        self.errors += other.errors;
    }

    fn json(&self) -> String {
        format!(
            "{{\"ok\": {}, \"degraded\": {}, \"shed\": {}, \"timeout\": {}, \"errors\": {}}}",
            self.ok, self.degraded, self.shed, self.timeout, self.errors
        )
    }
}

/// Issues one request and classifies its resolution; returns whether the
/// answer was full (and should count toward throughput/latency).
fn classify(
    session: &mut ServingSession<'_>,
    request: &Request,
    rng: &mut ChaCha8Rng,
    outcomes: &mut Outcomes,
) -> bool {
    match session.evaluate_degradable(request, rng) {
        Ok(ServingAnswer::Full(_)) => {
            outcomes.ok += 1;
            true
        }
        Ok(ServingAnswer::Degraded(_)) => {
            outcomes.degraded += 1;
            false
        }
        Err(EngineError::Overloaded { .. }) => {
            outcomes.shed += 1;
            false
        }
        Err(EngineError::DeadlineExceeded { .. }) => {
            outcomes.timeout += 1;
            false
        }
        Err(_) => {
            outcomes.errors += 1;
            false
        }
    }
}

/// Merged measurements of one load phase.
struct PhaseResult {
    requests: u64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    updates: u64,
    outcomes: Outcomes,
}

/// Runs the updater loop until `stop` is set: alternates a single-row
/// insert/remove delta on `S` so the database content keeps changing while
/// its size stays bounded.
fn updater_loop(engine: &ServingEngine, interval: Duration, stop: &AtomicBool) -> u64 {
    let mut updates = 0u64;
    let mut flip = false;
    let base = engine.database().relation("S").expect("S exists").clone();
    let mut base_plus = base.clone();
    base_plus
        .insert(
            urel::Condition::always(),
            Tuple::new(vec![Value::Int(0), Value::Int(9999)]),
        )
        .expect("insert delta row");
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(interval);
        let old = engine.database().relation("S").expect("S exists").clone();
        let new = if flip { &base } else { &base_plus };
        flip = !flip;
        let delta = old.diff(new).expect("diff");
        engine.apply_deltas([("S", delta)]).expect("apply delta");
        updates += 1;
    }
    updates
}

/// Closed loop: `sessions` threads issue requests back-to-back for
/// `duration`; throughput is whatever the engine sustains.
fn closed_loop(
    engine: &ServingEngine,
    mix: &[QueryShape],
    sessions: usize,
    duration: Duration,
    update_interval: Option<Duration>,
    seed: u64,
) -> PhaseResult {
    let schedule = schedule_of(mix);
    let stop = AtomicBool::new(false);
    let updates = AtomicU64::new(0);
    let start = Instant::now();
    let per_session: Vec<(Vec<f64>, Outcomes)> = std::thread::scope(|scope| {
        if let Some(interval) = update_interval {
            let stop = &stop;
            let updates = &updates;
            scope.spawn(move || {
                updates.store(updater_loop(engine, interval, stop), Ordering::Relaxed);
            });
        }
        let workers: Vec<_> = (0..sessions)
            .map(|s| {
                let stop = &stop;
                let schedule = &schedule;
                scope.spawn(move || {
                    let mut session = engine.session();
                    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(s as u64));
                    let mut latencies = Vec::new();
                    let mut outcomes = Outcomes::default();
                    let mut k = s;
                    while !stop.load(Ordering::Relaxed) {
                        let text = mix[schedule[k % schedule.len()]].text;
                        let request = Request::new(text);
                        let begin = Instant::now();
                        if classify(&mut session, &request, &mut rng, &mut outcomes) {
                            latencies.push(begin.elapsed().as_secs_f64() * 1e6);
                        }
                        k += 1;
                    }
                    (latencies, outcomes)
                })
            })
            .collect();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        workers
            .into_iter()
            .map(|w| w.join().expect("session thread"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut outcomes = Outcomes::default();
    let mut merged = Vec::new();
    for (latencies, session_outcomes) in per_session {
        merged.extend(latencies);
        outcomes.absorb(session_outcomes);
    }
    merged.sort_by(f64::total_cmp);
    PhaseResult {
        requests: merged.len() as u64,
        rps: merged.len() as f64 / elapsed.max(1e-9),
        p50_us: percentile(&merged, 0.50),
        p99_us: percentile(&merged, 0.99),
        updates: updates.load(Ordering::Relaxed),
        outcomes,
    }
}

/// One iteration of the open-loop ramp.
struct RampIteration {
    offered_rps: f64,
    achieved_rps: f64,
    p50_us: f64,
    p99_us: f64,
    saturated: bool,
    outcomes: Outcomes,
}

/// Per-request deadline of open-loop arrivals, measured from the *scheduled*
/// arrival time: a saturated iteration resolves its backlog as degraded
/// answers, sheds and timeouts (all counted per iteration) instead of
/// stretching the queue without bound.  Generous next to unsaturated p99s,
/// so it never clips a healthy iteration.
const RAMP_REQUEST_DEADLINE: Duration = Duration::from_millis(500);

/// Open loop at `target_rps`: arrivals are paced on a fixed global grid
/// striped across the sessions; a session that falls behind keeps issuing
/// without sleeping, and each latency is measured from the request's
/// *scheduled* time, so saturation shows up as queueing delay rather than
/// silently stretched arrival gaps.
fn open_loop(
    engine: &ServingEngine,
    mix: &[QueryShape],
    sessions: usize,
    target_rps: f64,
    duration: Duration,
    update_interval: Option<Duration>,
    seed: u64,
) -> RampIteration {
    let schedule = schedule_of(mix);
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let per_session: Vec<(Vec<f64>, Outcomes)> = std::thread::scope(|scope| {
        if let Some(interval) = update_interval {
            let stop = &stop;
            scope.spawn(move || {
                updater_loop(engine, interval, stop);
            });
        }
        let workers: Vec<_> = (0..sessions)
            .map(|s| {
                let schedule = &schedule;
                scope.spawn(move || {
                    let mut session = engine.session();
                    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(s as u64));
                    let mut latencies = Vec::new();
                    let mut outcomes = Outcomes::default();
                    let mut k = 0usize;
                    loop {
                        let due_secs = (s as f64 + (k * sessions) as f64) / target_rps;
                        if due_secs >= duration.as_secs_f64() {
                            break;
                        }
                        let due = t0 + Duration::from_secs_f64(due_secs);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let text = mix[schedule[(s + k) % schedule.len()]].text;
                        let request = Request::new(text).with_deadline(due + RAMP_REQUEST_DEADLINE);
                        if classify(&mut session, &request, &mut rng, &mut outcomes) {
                            latencies.push(due.elapsed().as_secs_f64() * 1e6);
                        }
                        k += 1;
                    }
                    (latencies, outcomes)
                })
            })
            .collect();
        let collected = workers
            .into_iter()
            .map(|w| w.join().expect("session thread"))
            .collect();
        stop.store(true, Ordering::Relaxed);
        collected
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut outcomes = Outcomes::default();
    let mut merged = Vec::new();
    for (latencies, session_outcomes) in per_session {
        merged.extend(latencies);
        outcomes.absorb(session_outcomes);
    }
    merged.sort_by(f64::total_cmp);
    let achieved_rps = merged.len() as f64 / elapsed.max(1e-9);
    RampIteration {
        offered_rps: target_rps,
        achieved_rps,
        p50_us: percentile(&merged, 0.50),
        p99_us: percentile(&merged, 0.99),
        saturated: achieved_rps < 0.9 * target_rps,
        outcomes,
    }
}

/// All measurements of one workload spec.
struct WorkloadResult {
    spec: WorkloadSpec,
    single: PhaseResult,
    concurrent: PhaseResult,
    ramp: Vec<RampIteration>,
    capacity_rps: f64,
}

fn run_workload(spec: WorkloadSpec, phase: Duration, ramp_step: Duration) -> WorkloadResult {
    let engine =
        ServingEngine::new(EvalConfig::default(), database(spec.rows)).expect("serving engine");
    // Warm every shape once so the phases measure the serving steady state,
    // not first-evaluation compilation.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for shape in &spec.mix {
        engine.evaluate(shape.text, &mut rng).expect("warmup");
    }

    let single = closed_loop(&engine, &spec.mix, 1, phase, None, 100);
    let concurrent = closed_loop(
        &engine,
        &spec.mix,
        spec.sessions,
        phase,
        spec.update_interval,
        200,
    );

    // Ramp from well under the measured closed-loop capacity to past it.
    let mut ramp = Vec::new();
    let mut capacity_rps = 0.0f64;
    for factor in [0.4, 0.7, 1.0, 1.3, 1.7, 2.2] {
        let target = (concurrent.rps * factor).max(1.0);
        let iteration = open_loop(
            &engine,
            &spec.mix,
            spec.sessions,
            target,
            ramp_step,
            spec.update_interval,
            300,
        );
        let saturated = iteration.saturated;
        if !saturated {
            capacity_rps = capacity_rps.max(iteration.achieved_rps);
        }
        ramp.push(iteration);
        if saturated {
            break;
        }
    }

    WorkloadResult {
        spec,
        single,
        concurrent,
        ramp,
        capacity_rps,
    }
}

fn render_json(smoke: bool, results: &[WorkloadResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"generated_by\": \"cargo run --release -p bench --bin capacity\","
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    let _ = writeln!(
        out,
        "  \"note\": \"concurrent_speedup_vs_single is bounded by host_threads: \
         sessions share the machine's cores, so a single-core host pins it near 1.0 \
         regardless of how many sessions run\","
    );
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.spec.name);
        let _ = writeln!(out, "      \"description\": \"{}\",", r.spec.description);
        let _ = writeln!(out, "      \"rows\": {},", r.spec.rows);
        let _ = writeln!(out, "      \"sessions\": {},", r.spec.sessions);
        let _ = writeln!(
            out,
            "      \"update_interval_ms\": {},",
            r.spec
                .update_interval
                .map_or("null".to_string(), |d| format!("{}", d.as_millis()))
        );
        let _ = writeln!(out, "      \"mix\": [");
        for (j, shape) in r.spec.mix.iter().enumerate() {
            let comma = if j + 1 < r.spec.mix.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"label\": \"{}\", \"weight\": {}, \"query\": \"{}\"}}{comma}",
                shape.label, shape.weight, shape.text
            );
        }
        let _ = writeln!(out, "      ],");
        let _ = writeln!(
            out,
            "      \"single_session\": {{\"requests\": {}, \"rps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}}},",
            r.single.requests, r.single.rps, r.single.p50_us, r.single.p99_us
        );
        let _ = writeln!(
            out,
            "      \"concurrent\": {{\"requests\": {}, \"rps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"updates_applied\": {}, \
             \"outcomes\": {}}},",
            r.concurrent.requests,
            r.concurrent.rps,
            r.concurrent.p50_us,
            r.concurrent.p99_us,
            r.concurrent.updates,
            r.concurrent.outcomes.json()
        );
        let _ = writeln!(
            out,
            "      \"concurrent_speedup_vs_single\": {:.2},",
            r.concurrent.rps / r.single.rps.max(1e-9)
        );
        let _ = writeln!(out, "      \"ramp\": [");
        for (j, it) in r.ramp.iter().enumerate() {
            let comma = if j + 1 < r.ramp.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"saturated\": {}, \
                 \"outcomes\": {}}}{comma}",
                it.offered_rps,
                it.achieved_rps,
                it.p50_us,
                it.p99_us,
                it.saturated,
                it.outcomes.json()
            );
        }
        let _ = writeln!(out, "      ],");
        let _ = writeln!(out, "      \"capacity_rps\": {:.1}", r.capacity_rps);
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());

    let (phase, ramp_step) = if smoke {
        (Duration::from_millis(250), Duration::from_millis(200))
    } else {
        (Duration::from_millis(1500), Duration::from_millis(1000))
    };

    let results: Vec<WorkloadResult> = workloads(smoke)
        .into_iter()
        .map(|spec| run_workload(spec, phase, ramp_step))
        .collect();

    let json = render_json(smoke, &results);
    print!("{json}");

    for r in &results {
        let mut ramp_outcomes = Outcomes::default();
        for it in &r.ramp {
            ramp_outcomes.absorb(it.outcomes);
        }
        eprintln!(
            "{}: single {:.0} rps, {} sessions {:.0} rps ({:.2}x), capacity {:.0} rps, \
             p99 {:.0} -> {:.0} us, {} updates, ramp outcomes {}",
            r.spec.name,
            r.single.rps,
            r.spec.sessions,
            r.concurrent.rps,
            r.concurrent.rps / r.single.rps.max(1e-9),
            r.capacity_rps,
            r.concurrent.p50_us,
            r.concurrent.p99_us,
            r.concurrent.updates,
            ramp_outcomes.json()
        );
    }

    if !smoke {
        let path = out_path.unwrap_or_else(|| "BENCH_capacity.json".to_string());
        std::fs::write(&path, &json).expect("write BENCH_capacity.json");
        eprintln!("wrote {path}");
    }
}
