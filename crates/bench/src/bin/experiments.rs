//! Experiment driver: regenerates every figure/example/claim of the paper.
//!
//! ```text
//! cargo run --release -p bench --bin experiments            # run everything
//! cargo run --release -p bench --bin experiments -- e5 e9   # run a subset
//! cargo run --release -p bench --bin experiments -- --list  # list experiments
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--list") {
        for id in bench::ALL_EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        bench::ALL_EXPERIMENTS
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };

    let mut failed = false;
    for id in &ids {
        match bench::run(&id.to_lowercase()) {
            Some(report) => print!("{}", report.render()),
            None => {
                eprintln!("unknown experiment id `{id}` (use --list to see the available ids)");
                failed = true;
            }
        }
        println!();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
