//! Experiment harness: one function per experiment of the per-experiment
//! index in `DESIGN.md` (E1–E15).  Each function runs the experiment on the
//! synthetic workloads and returns a printable report; the `experiments`
//! binary dispatches on experiment ids and prints the reports that
//! `EXPERIMENTS.md` records.
//!
//! The paper is a theory paper without measurement tables, so the "figures"
//! regenerated here are its worked examples (Examples 2.2, 3.2, 5.4, 6.5 and
//! Figures 1–3) and the quantitative claims of its theorems (FPRAS error
//! guarantees, the adaptive-vs-naive saving, the Proposition 6.6 error bound
//! and the Theorem 6.7 iteration doubling).

#![forbid(unsafe_code)]

use algebra::parse_query;
use approx::{
    approximate_predicate, naive_decide, ApproxPredicate, ApproximationParams, LinearIneq,
    Orthotope,
};
use confidence::{
    approximate_confidence, exact, Assignment, DnfEvent, FprasParams, IncrementalEstimator,
    ProbabilitySpace,
};
use engine::{
    evaluate_adaptive, evaluate_naive, proposition_6_6_bound, ApproxSelectMode, ConfidenceMode,
    EvalConfig, QueryShape, UEngine,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;
use workloads::{coins, CleaningWorkload, RandomDnf, SensorWorkload, TupleIndependentDb};

/// A report produced by one experiment: an id, a title and pre-formatted
/// result lines.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id (E1, E2, …) as in DESIGN.md.
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The report body.
    pub lines: Vec<String>,
}

impl Report {
    fn new(id: &'static str, title: &'static str) -> Self {
        Report {
            id,
            title,
            lines: Vec::new(),
        }
    }

    fn push(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        for line in &self.lines {
            let _ = writeln!(out, "   {line}");
        }
        out
    }
}

/// All experiment ids, in order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
];

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<Report> {
    match id {
        "e1" => Some(e1_coin_example()),
        "e2" => Some(e2_representation_roundtrip()),
        "e3" => Some(e3_exact_confidence_scaling()),
        "e4" => Some(e4_fpras_accuracy()),
        "e5" => Some(e5_example_5_4_geometry()),
        "e6" => Some(e6_theorem_5_2_soundness()),
        "e7" => Some(e7_theorem_5_5_soundness()),
        "e8" => Some(e8_figure_3_algorithm()),
        "e9" => Some(e9_adaptive_vs_naive()),
        "e10" => Some(e10_example_6_3()),
        "e11" => Some(e11_example_6_5()),
        "e12" => Some(e12_proposition_6_6()),
        "e13" => Some(e13_theorem_6_7()),
        "e14" => Some(e14_theorem_4_4()),
        "e15" => Some(e15_query_scaling()),
        _ => None,
    }
}

/// E1: Example 2.2 / Figure 1 — the coin posterior on both engines.
pub fn e1_coin_example() -> Report {
    let mut report = Report::new("E1", "Example 2.2 / Figure 1: coin-bag posterior");
    let udb = coins::coin_udatabase();
    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let u = coins::query_u(2);
    let out = engine.evaluate(&udb, &u, &mut rng).expect("U evaluates");
    report.push(format!(
        "possible worlds after evaluating T: {} (paper: 8)",
        out.database.num_possible_worlds()
    ));
    for row in out.result.relation.iter() {
        report.push(format!("posterior {}", row.tuple));
    }
    let reference = evaluate_naive(&coins::coin_database(), &u).expect("reference");
    for t in reference.possible_tuples().expect("result").iter() {
        report.push(format!("reference {t}"));
    }
    report.push("paper: fair -> 1/3, 2headed -> 2/3".to_string());
    report
}

/// E2: Theorem 3.1 — encode/decode round trip preserves confidences.
pub fn e2_representation_roundtrip() -> Report {
    let mut report = Report::new(
        "E2",
        "Theorem 3.1: U-relations are a complete representation",
    );
    let gen = TupleIndependentDb {
        num_tuples: 6,
        ..TupleIndependentDb::default()
    };
    let udb = gen.database();
    let explicit = urel::decode_default(&udb).expect("decode");
    let re_encoded = urel::encode(&explicit).expect("encode");
    let decoded_again = urel::decode_default(&re_encoded).expect("decode again");
    let mut max_diff = 0.0f64;
    for t in explicit.poss("T").expect("poss").iter() {
        let a = explicit.confidence("T", t).expect("confidence");
        let b = decoded_again.confidence("T", t).expect("confidence");
        max_diff = max_diff.max((a - b).abs());
    }
    report.push(format!(
        "worlds: {} -> re-encoded variables: {}",
        explicit.num_worlds(),
        re_encoded.wtable().num_variables()
    ));
    report.push(format!(
        "max confidence difference across round trip: {max_diff:.2e} (paper: representation is complete, i.e. 0)"
    ));
    report
}

/// E3: Theorem 3.4 / Proposition 3.5 — exact confidence cost on the succinct
/// representation vs a linear pass over explicit worlds.
pub fn e3_exact_confidence_scaling() -> Report {
    let mut report = Report::new(
        "E3",
        "Theorem 3.4 / Prop 3.5: exact confidence, succinct vs nonsuccinct",
    );
    report.push("vars  |F|   enumeration(us)  shannon(us)  worlds  world-pass(us)".to_string());
    for &num_vars in &[8usize, 12, 16, 20] {
        let gen = RandomDnf {
            num_variables: num_vars,
            num_terms: num_vars / 2,
            literals_per_term: 3,
            seed: 5,
        };
        let (event, space) = gen.generate();

        let start = Instant::now();
        let p_enum = exact::by_enumeration(&event, &space, 1 << 26).expect("enumeration");
        let t_enum = start.elapsed().as_micros();

        let start = Instant::now();
        let p_shannon = exact::by_shannon_expansion(&event, &space).expect("shannon");
        let t_shannon = start.elapsed().as_micros();
        assert!((p_enum - p_shannon).abs() < 1e-9);

        // The nonsuccinct representation: materialise the worlds once, then a
        // single weighted pass computes the confidence (Proposition 3.5).
        let mentioned = event.variables().len();
        let worlds = 1u128 << mentioned;
        let assignments = confidence_worlds(&event, &space);
        let start = Instant::now();
        let p_worlds: f64 = assignments
            .iter()
            .filter(|(a, _)| event.satisfied_by(a))
            .map(|(_, w)| *w)
            .sum();
        let t_worlds = start.elapsed().as_micros();
        assert!((p_worlds - p_enum).abs() < 1e-9);

        report.push(format!(
            "{num_vars:>4}  {:>3}   {t_enum:>14}  {t_shannon:>11}  {worlds:>6}  {t_worlds:>13}",
            event.num_terms()
        ));
    }
    report.push(
        "shape check: succinct-side cost grows exponentially with the variable count, \
         while the per-world pass is linear in the (exponentially many) worlds"
            .to_string(),
    );
    report
}

fn confidence_worlds(event: &DnfEvent, space: &ProbabilitySpace) -> Vec<(Assignment, f64)> {
    let vars = event.variables();
    let mut out = vec![(Vec::new(), 1.0f64)];
    for &v in &vars {
        let mut next = Vec::with_capacity(out.len() * 2);
        for (prefix, w) in &out {
            for alt in 0..space.num_alternatives(v).expect("var") {
                let mut p = prefix.clone();
                p.push((v, alt));
                next.push((p, w * space.probability(v, alt).expect("prob")));
            }
        }
        out = next;
    }
    out.into_iter()
        .map(|(pairs, w)| (Assignment::new(pairs).expect("assignment"), w))
        .collect()
}

/// E4: Proposition 4.2 — empirical validation of the (ε, δ) guarantee.
pub fn e4_fpras_accuracy() -> Report {
    let mut report = Report::new("E4", "Proposition 4.2: Karp-Luby FPRAS accuracy");
    report.push("|F|  eps   delta  runs  violations  max_rel_err  samples".to_string());
    for &(num_terms, epsilon) in &[(8usize, 0.2f64), (8, 0.1), (32, 0.1)] {
        let gen = RandomDnf {
            num_variables: num_terms * 2,
            num_terms,
            literals_per_term: 3,
            seed: 9,
        };
        let (event, space) = gen.generate();
        let exact_p = exact::probability(&event, &space).expect("exact");
        let delta = 0.05;
        let params = FprasParams::new(epsilon, delta).expect("params");
        let runs = 20usize;
        let mut violations = 0usize;
        let mut max_rel = 0.0f64;
        let mut samples = 0usize;
        for seed in 0..runs as u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let est = approximate_confidence(&event, &space, params, &mut rng).expect("fpras");
            samples = est.samples;
            let rel = (est.estimate - exact_p).abs() / exact_p;
            max_rel = max_rel.max(rel);
            if rel > epsilon {
                violations += 1;
            }
        }
        report.push(format!(
            "{num_terms:>3}  {epsilon:<4}  {delta:<5}  {runs:>4}  {violations:>10}  {max_rel:>11.4}  {samples}"
        ));
    }
    report.push("paper: relative error exceeds eps with probability at most delta".to_string());
    report
}

/// E5: Example 5.4 / Figure 2 — the ε-geometry.
pub fn e5_example_5_4_geometry() -> Report {
    let mut report = Report::new(
        "E5",
        "Example 5.4 / Figure 2: maximal orthotope for x1/x2 >= 1/2",
    );
    let phi = LinearIneq::ratio_at_least(2, 0, 1, 0.5);
    let p_hat = [0.5, 0.5];
    let eps = phi.epsilon_max(&p_hat).expect("epsilon");
    let orthotope = Orthotope::relative(&p_hat, eps).expect("orthotope");
    report.push(format!("epsilon = {eps:.6} (paper: 1/3 ≈ 0.333333)"));
    report.push(format!(
        "orthotope = {} x {} (paper: [3/8, 3/4]^2 = [0.375, 0.75]^2)",
        orthotope.intervals()[0],
        orthotope.intervals()[1]
    ));
    let touch = [0.5 / (1.0 + eps), 0.5 / (1.0 - eps)];
    report.push(format!(
        "touches the hyperplane 2x1 = x2 at ({:.4}, {:.4}) (paper: (3/8, 3/4))",
        touch[0], touch[1]
    ));
    report
}

/// E6: Theorem 5.2 — soundness of the closed-form ε on random linear
/// inequalities.
pub fn e6_theorem_5_2_soundness() -> Report {
    let mut report = Report::new(
        "E6",
        "Theorem 5.2: closed-form epsilon keeps the orthotope homogeneous",
    );
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    use rand::Rng as _;
    let mut checked = 0usize;
    let mut violations = 0usize;
    let mut eps_sum = 0.0f64;
    for _ in 0..300 {
        let k = rng.gen_range(1..=5usize);
        let coeffs: Vec<f64> = (0..k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let point: Vec<f64> = (0..k).map(|_| rng.gen_range(0.05..0.95)).collect();
        let lhs: f64 = coeffs.iter().zip(&point).map(|(a, x)| a * x).sum();
        let bound = lhs - rng.gen_range(0.0..0.5); // satisfied by construction
        let ineq = LinearIneq::new(coeffs, bound);
        let eps = match ineq.epsilon_max(&point) {
            Ok(e) => e,
            Err(_) => continue,
        };
        let eps = eps.min(0.999);
        if eps <= 0.0 {
            continue;
        }
        checked += 1;
        eps_sum += eps;
        let orthotope = Orthotope::relative(&point, eps * 0.999).expect("orthotope");
        for corner in orthotope.corners() {
            if !ineq.eval(&corner).expect("eval") {
                violations += 1;
                break;
            }
        }
    }
    report.push(format!(
        "random satisfied linear inequalities checked: {checked}, homogeneity violations: {violations} (paper: 0)"
    ));
    report.push(format!(
        "mean epsilon: {:.3}",
        eps_sum / checked.max(1) as f64
    ));
    report
}

/// E7: Theorem 5.5 — corner-check ε agrees with dense sampling on
/// single-occurrence algebraic predicates.
pub fn e7_theorem_5_5_soundness() -> Report {
    let mut report = Report::new(
        "E7",
        "Theorem 5.5: corner-check epsilon is homogeneous for single-occurrence predicates",
    );
    use approx::{AlgExpr, AlgebraicIneq};
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    use rand::Rng as _;
    let mut checked = 0usize;
    let mut violations = 0usize;
    for _ in 0..100 {
        // f(x) = x0·x1 − c  or  x0/x1 − c  or  x0 + x1 − c, each single
        // occurrence.
        let c = rng.gen_range(0.05..0.9);
        let which = rng.gen_range(0..3);
        let expr = match which {
            0 => AlgExpr::var(0) * AlgExpr::var(1) - AlgExpr::konst(c),
            1 => AlgExpr::var(0) / AlgExpr::var(1) - AlgExpr::konst(c),
            _ => AlgExpr::var(0) + AlgExpr::var(1) - AlgExpr::konst(c),
        };
        let phi = AlgebraicIneq::new(expr).expect("single occurrence");
        let point = [rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9)];
        let reference = phi.eval(&point).expect("eval");
        let eps = phi.epsilon_homogeneous(&point).expect("epsilon");
        if eps <= 1e-4 {
            continue;
        }
        checked += 1;
        // Dense sampling inside the orthotope.
        let orthotope = Orthotope::relative(&point, eps * 0.98).expect("orthotope");
        let grid = 7;
        'outer: for i in 0..=grid {
            for j in 0..=grid {
                let x = [
                    orthotope.intervals()[0].lo
                        + orthotope.intervals()[0].width() * i as f64 / grid as f64,
                    orthotope.intervals()[1].lo
                        + orthotope.intervals()[1].width() * j as f64 / grid as f64,
                ];
                if phi.eval(&x).map(|v| v != reference).unwrap_or(true) {
                    violations += 1;
                    break 'outer;
                }
            }
        }
    }
    report.push(format!(
        "single-occurrence predicates checked by dense sampling: {checked}, violations: {violations} (paper: 0)"
    ));
    report
}

/// E8: Figure 3 / Theorem 5.8 — decision error vs distance from the
/// threshold, including the near-singular regime.
pub fn e8_figure_3_algorithm() -> Report {
    let mut report = Report::new("E8", "Figure 3 / Theorem 5.8: predicate approximation");
    report.push("true_p  threshold  margin  runs  wrong  mean_iterations".to_string());
    let delta = 0.1;
    let eps0 = 0.05;
    for &(n, q, threshold) in &[
        (6usize, 0.175f64, 0.3f64), // wide margin
        (5, 0.13, 0.4),             // medium margin
        (1, 0.5, 0.45),             // narrow margin
        (1, 0.5, 0.5),              // singularity
    ] {
        let true_p = 1.0 - (1.0 - q).powi(n as i32);
        let truth = true_p >= threshold;
        let runs = 20usize;
        let mut wrong = 0usize;
        let mut iterations = 0usize;
        for seed in 0..runs as u64 {
            let mut space = ProbabilitySpace::new();
            let mut terms = Vec::new();
            for _ in 0..n {
                let v = space.add_bool_variable(q).expect("prob");
                terms.push(Assignment::new([(v, 0)]).expect("assignment"));
            }
            let mut estimator =
                IncrementalEstimator::new(DnfEvent::new(terms), space).expect("estimator");
            let phi = ApproxPredicate::threshold(1, 0, threshold);
            let params = ApproximationParams::new(eps0, delta)
                .expect("params")
                .with_max_iterations(3000);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let d =
                approximate_predicate(&phi, std::slice::from_mut(&mut estimator), params, &mut rng)
                    .expect("decision");
            if d.value != truth {
                wrong += 1;
            }
            iterations += d.iterations;
        }
        let margin = (true_p - threshold).abs() / true_p;
        report.push(format!(
            "{true_p:.3}   {threshold:<9}  {margin:.3}   {runs:>4}  {wrong:>5}  {:.0}",
            iterations as f64 / runs as f64
        ));
    }
    report.push(format!(
        "paper: error <= delta = {delta} away from eps0-singularities; the last row is the singular case (margin 0), where no guarantee applies"
    ));
    report
}

/// E9: the closing claim of Section 5 — adaptive vs naive estimator
/// invocations as a function of the predicate margin.
pub fn e9_adaptive_vs_naive() -> Report {
    let mut report = Report::new(
        "E9",
        "Section 5 closing claim: adaptive vs naive sample counts",
    );
    report.push(
        "margin(eps_phi)  adaptive_samples  naive_samples  measured_saving  predicted_saving"
            .to_string(),
    );
    let eps0 = 0.02;
    let delta = 0.05;
    for &threshold in &[0.2f64, 0.4, 0.55, 0.62] {
        let n = 6usize;
        let q = 0.175f64;
        let mut space = ProbabilitySpace::new();
        let mut terms = Vec::new();
        for _ in 0..n {
            let v = space.add_bool_variable(q).expect("prob");
            terms.push(Assignment::new([(v, 0)]).expect("assignment"));
        }
        let event = DnfEvent::new(terms);
        let phi = ApproxPredicate::threshold(1, 0, threshold);
        let params = ApproximationParams::new(eps0, delta).expect("params");

        let mut adaptive_est =
            IncrementalEstimator::new(event.clone(), space.clone()).expect("estimator");
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let adaptive = approximate_predicate(
            &phi,
            std::slice::from_mut(&mut adaptive_est),
            params,
            &mut rng,
        )
        .expect("adaptive");

        let mut naive_est = IncrementalEstimator::new(event, space).expect("estimator");
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let naive = naive_decide(&phi, std::slice::from_mut(&mut naive_est), params, &mut rng)
            .expect("naive");

        let measured = 1.0 - adaptive.samples as f64 / naive.samples as f64;
        let predicted = approx::expected_saving_factor(adaptive.epsilon, eps0);
        report.push(format!(
            "{:.3}            {:>16}  {:>13}  {:>14.1}%  {:>16.1}%",
            adaptive.epsilon,
            adaptive.samples,
            naive.samples,
            measured * 100.0,
            predicted * 100.0
        ));
    }
    report.push(
        "paper: the running time improves by close to (eps_phi^2 - eps0^2)/eps_phi^2".to_string(),
    );
    report
}

/// E10: Example 6.3 — error bounds cannot be treated as exact error
/// probabilities.
pub fn e10_example_6_3() -> Report {
    let mut report = Report::new("E10", "Example 6.3: bounds are not error probabilities");
    let delta: f64 = 0.1;
    let e: f64 = 0.04; // true error of t1, below the bound
    let true_value = 1.0 - delta + e * delta;
    let wrong_model = 1.0 - delta + delta * delta;
    report.push(format!(
        "Pr[sigma_phi(R) nonempty] with true errors (e = {e}, delta = {delta}): {true_value:.4}"
    ));
    report.push(format!(
        "same quantity if the bound delta were treated as the exact error: {wrong_model:.4}"
    ));
    report.push(format!(
        "the modelled value is too great by {:.4}, so it would yield a too small error bound — \
         exactly the paper's warning that bounds cannot be treated as error probabilities",
        wrong_model - true_value
    ));
    report
}

/// E11: Example 6.5 — the provenance of a projection output can be the whole
/// input; error grows like µ·n.
pub fn e11_example_6_5() -> Report {
    let mut report = Report::new("E11", "Example 6.5: projection provenance error ~ mu * n");
    report.push("n     exact 1-(1-mu)^n   linear bound mu*n".to_string());
    let mu = 0.01;
    for &n in &[1usize, 4, 16, 64, 256] {
        let (exact_err, linear) = engine::provenance::example_6_5_bound(mu, n);
        report.push(format!("{n:>4}  {exact_err:>16.4}   {linear:>16.4}"));
    }
    report.push("paper: Pr[<a> flips] = 1 - (1-mu)^n <= mu*n".to_string());
    report
}

/// E12: Lemma 6.4 / Proposition 6.6 — empirical per-tuple error vs the
/// closed-form bound for σ̂ queries.
pub fn e12_proposition_6_6() -> Report {
    let mut report = Report::new(
        "E12",
        "Lemma 6.4 / Prop 6.6: per-tuple error vs closed-form bound",
    );
    let workload = SensorWorkload {
        num_sensors: 6,
        readings_per_sensor: 4,
        high_probability: 0.45,
        seed: 21,
    };
    let db = workload.database();
    let threshold = 0.7;
    let query = SensorWorkload::alarm_query(threshold, 0.05, 0.05);

    // Ground truth from the exact engine.
    let exact_engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let truth = exact_engine
        .evaluate(&db, &query, &mut rng)
        .expect("exact")
        .result
        .relation
        .possible_tuples();

    // Repeated approximate evaluations with a fixed iteration count.
    let l = 200usize;
    let runs = 20usize;
    let mut flips = 0usize;
    let mut decisions = 0usize;
    let mut reported_bound = 0.0f64;
    for seed in 0..runs as u64 {
        let engine = UEngine::new(EvalConfig {
            approx_select: ApproxSelectMode::FixedIterations(l),
            confidence: ConfidenceMode::Exact,
            ..EvalConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = engine.evaluate(&db, &query, &mut rng).expect("approximate");
        reported_bound = reported_bound.max(out.result.max_error());
        for sensor in 0..workload.num_sensors {
            decisions += 1;
            let t = pdb::Tuple::new(vec![pdb::Value::Int(sensor as i64)]);
            if truth.contains(&t) != out.result.relation.possible_tuples().contains(&t) {
                flips += 1;
            }
        }
    }
    let shape =
        QueryShape::new(3, 1, engine::active_domain_size(&db).expect("domain")).expect("shape");
    let closed_form = proposition_6_6_bound(shape, 0.05, l).expect("bound");
    report.push(format!(
        "observed membership flips: {flips} / {decisions} decisions ({:.4})",
        flips as f64 / decisions as f64
    ));
    report.push(format!(
        "largest per-tuple bound reported by the engine: {reported_bound:.4}"
    ));
    report.push(format!(
        "closed-form Prop 6.6 bound (k=3, d=1, n={}, l={l}): {closed_form:.4}",
        shape.n
    ));
    report.push("paper: observed error <= engine bound <= closed-form bound".to_string());
    report
}

/// E13: Theorem 6.7 — iteration doubling reaches the target error.
pub fn e13_theorem_6_7() -> Report {
    let mut report = Report::new(
        "E13",
        "Theorem 6.7: whole-query approximation by iteration doubling",
    );
    let workload = SensorWorkload {
        num_sensors: 8,
        readings_per_sensor: 4,
        high_probability: 0.45,
        seed: 29,
    };
    let db = workload.database();
    let query = SensorWorkload::alarm_query(0.7, 0.05, 0.05);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let start = Instant::now();
    let out = evaluate_adaptive(&db, &query, 0.05, 0.05, &mut rng).expect("adaptive evaluation");
    let elapsed = start.elapsed();
    report.push(format!(
        "attempts (l, max output error): {:?}",
        out.attempts
            .iter()
            .map(|(l, e)| (*l, (e * 1e4).round() / 1e4))
            .collect::<Vec<_>>()
    ));
    report.push(format!(
        "converged at l = {} (fallback l0 = {}), wall time {:.1} ms",
        out.iterations_used,
        out.l0,
        elapsed.as_secs_f64() * 1e3
    ));
    report.push(format!(
        "final max per-tuple error: {:.4} <= delta = 0.05",
        out.output.result.max_error()
    ));

    // Comparison: evaluating directly at the fallback l0.
    let engine = UEngine::new(EvalConfig {
        approx_select: ApproxSelectMode::FixedIterations(out.l0),
        confidence: ConfidenceMode::Exact,
        ..EvalConfig::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let start = Instant::now();
    let fixed = engine
        .evaluate(&db, &query, &mut rng)
        .expect("fixed-l evaluation");
    let fixed_elapsed = start.elapsed();
    report.push(format!(
        "samples: adaptive driver {} vs fixed l0 {} ({:.1} ms)",
        out.output.stats.karp_luby_samples,
        fixed.stats.karp_luby_samples,
        fixed_elapsed.as_secs_f64() * 1e3
    ));
    report.push("paper: polynomial-time convergence, at the latest when l >= l0".to_string());
    report
}

/// E14: Theorem 4.4 — conditional probabilities with an egd constraint in
/// positive UA\[conf\].
pub fn e14_theorem_4_4() -> Report {
    let mut report = Report::new(
        "E14",
        "Theorem 4.4: Pr[phi AND egd] = Pr[phi] - Pr[phi AND NOT egd]",
    );
    let workload = CleaningWorkload {
        num_records: 6,
        alternatives_per_record: 2,
        num_cities: 3,
        seed: 13,
    };
    let db = workload.database();
    let engine = UEngine::new(EvalConfig::exact());
    let read = |query| -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = engine
            .evaluate(&db, &query, &mut rng)
            .expect("egd subquery");
        let p = out
            .result
            .relation
            .iter()
            .next()
            .and_then(|row| row.tuple[0].as_f64())
            .unwrap_or(0.0);
        p
    };
    let p_phi = read(CleaningWorkload::egd_phi_query(0));
    let p_viol = read(CleaningWorkload::egd_violation_query(0));
    let p_and = (p_phi - p_viol).max(0.0);
    report.push(format!("Pr[phi] = {p_phi:.4}"));
    report.push(format!("Pr[phi AND NOT psi] = {p_viol:.4}"));
    report.push(format!(
        "Pr[phi AND psi] = {p_and:.4} (via the Theorem 4.4 rewriting)"
    ));

    // Cross-check against the possible-worlds reference: enumerate worlds and
    // count directly.
    let clean = CleaningWorkload::cleaned_query();
    let reference = evaluate_naive(
        &pdb::ProbabilisticDatabase::from_complete_relations([("Dirty", workload.dirty())])
            .expect("complete db"),
        &clean,
    )
    .expect("reference clean");
    let mut direct = 0.0;
    for world in reference.database.worlds() {
        let rel = world.relation(&reference.result).expect("clean relation");
        let schema = rel.schema().clone();
        let name_idx = schema.index_of("Name").expect("Name");
        let city_idx = schema.index_of("City").expect("City");
        let in_city0 = rel.iter().any(|t| t[city_idx] == pdb::Value::str("city0"));
        let egd_holds = {
            let mut ok = true;
            for a in rel.iter() {
                for b in rel.iter() {
                    if a[name_idx] == b[name_idx] && a[city_idx] != b[city_idx] {
                        ok = false;
                    }
                }
            }
            ok
        };
        if in_city0 && egd_holds {
            direct += world.probability();
        }
    }
    report.push(format!(
        "direct possible-worlds computation of Pr[phi AND psi] = {direct:.4} (difference {:.2e})",
        (direct - p_and).abs()
    ));
    report
}

/// E15: Corollary 4.3 — evaluation time of positive UA[conf_{ε,δ}] scales
/// polynomially with the input size.
pub fn e15_query_scaling() -> Report {
    let mut report = Report::new("E15", "Corollary 4.3: approximate query evaluation scaling");
    report.push("tuples  karp_luby_samples  wall_ms".to_string());
    let query = parse_query("aconf[0.2, 0.1](project[A](T))").expect("scaling query");
    for &n in &[10usize, 20, 40, 80] {
        let gen = TupleIndependentDb {
            num_tuples: n,
            domain_size: 4,
            tuple_probability: Some(0.3),
            seed: 7,
        };
        let db = gen.database();
        let engine = UEngine::new(EvalConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let start = Instant::now();
        let out = engine
            .evaluate(&db, &query, &mut rng)
            .expect("scaling evaluation");
        let elapsed = start.elapsed();
        report.push(format!(
            "{n:>6}  {:>17}  {:>7.1}",
            out.stats.karp_luby_samples,
            elapsed.as_secs_f64() * 1e3
        ));
    }
    report
        .push("paper: polynomial time in the size of the input U-relational database".to_string());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_id_dispatches() {
        for id in ALL_EXPERIMENTS {
            // Only check dispatch for the heavier experiments; run the light
            // ones fully.
            match *id {
                "e5" | "e10" | "e11" => {
                    let r = run(id).expect("experiment exists");
                    assert!(!r.lines.is_empty());
                    assert!(!r.render().is_empty());
                }
                _ => assert!(ALL_EXPERIMENTS.contains(id)),
            }
        }
        assert!(run("nope").is_none());
    }

    #[test]
    fn e5_reproduces_the_paper_numbers() {
        let r = e5_example_5_4_geometry();
        let text = r.render();
        assert!(text.contains("0.333333"));
        assert!(text.contains("0.375"));
    }

    #[test]
    fn e10_and_e11_match_closed_forms() {
        let r = e10_example_6_3();
        assert!(r.render().contains("too small error bound"));
        let r = e11_example_6_5();
        assert!(r.render().contains("256"));
    }
}
