//! Criterion micro-benchmarks for the Monte Carlo estimation kernels: the
//! scalar per-world Karp–Luby reference vs the bit-parallel
//! 64-worlds-per-word kernel over compiled lineage programs.
//!
//! ```text
//! cargo bench -p bench --bench estimator_bench            # full sizes
//! cargo bench -p bench --bench estimator_bench -- --smoke # CI smoke sizes
//! ```
//!
//! Both kernels draw the same number of samples per event; the benchmark
//! sweeps the event width `|F|` (terms = variables, the shape `aconf` sees
//! after a projection over a tuple-independent relation).

use confidence::{
    Assignment, BitKarpLuby, DnfEvent, KarpLubyEstimator, LineagePrograms, ProbabilitySpace,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// An event of `terms` single-literal terms over fresh Boolean variables
/// with varied probabilities — the lineage shape of a projected
/// tuple-independent relation.
fn projected_lineage(terms: usize) -> (DnfEvent, ProbabilitySpace) {
    let mut space = ProbabilitySpace::new();
    let mut assignments = Vec::with_capacity(terms);
    for i in 0..terms {
        let p = 0.15 + 0.7 * ((i * 37 % 100) as f64 / 100.0);
        let v = space.add_bool_variable(p).expect("valid probability");
        assignments.push(Assignment::new([(v, 0)]).expect("assignment"));
    }
    (DnfEvent::new(assignments), space)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_kernel");
    group.sample_size(10);
    let (widths, samples): (&[usize], usize) = if smoke() {
        (&[16, 64], 4_000)
    } else {
        (&[16, 64, 256], 40_000)
    };

    for &terms in widths {
        let (event, space) = projected_lineage(terms);

        group.bench_with_input(BenchmarkId::new("scalar", terms), &terms, |b, _| {
            let estimator =
                KarpLubyEstimator::new(event.clone(), space.clone()).expect("scalar estimator");
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            b.iter(|| estimator.estimate(samples, &mut rng).expect("estimate"));
        });

        group.bench_with_input(BenchmarkId::new("bit_parallel", terms), &terms, |b, _| {
            let programs =
                Arc::new(LineagePrograms::compile(vec![event.clone()], &space).expect("compile"));
            let mut kernel = BitKarpLuby::new(programs, 0).expect("kernel");
            let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
            b.iter(|| kernel.estimate(samples, &mut rng).expect("estimate"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
