//! Criterion benchmarks for the ε-maximisation machinery of Section 5
//! (E5–E7): the closed form of Theorem 5.2 vs the corner-check binary search
//! of Theorem 5.5 as the number of approximated values grows.

use approx::{AlgExpr, AlgebraicIneq, LinearIneq};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_epsilon_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("epsilon_linear_theorem_5_2");
    for &k in &[2usize, 4, 8, 16] {
        let coeffs: Vec<f64> = (0..k)
            .map(|i| if i % 2 == 0 { 1.0 } else { -0.25 })
            .collect();
        let point: Vec<f64> = (0..k).map(|i| 0.3 + 0.02 * i as f64).collect();
        let ineq = LinearIneq::new(coeffs, 0.05);
        assert!(ineq.eval(&point).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| ineq.epsilon_max(&point).unwrap());
        });
    }
    group.finish();
}

fn bench_epsilon_algebraic(c: &mut Criterion) {
    let mut group = c.benchmark_group("epsilon_algebraic_theorem_5_5");
    group.sample_size(20);
    for &k in &[2usize, 4, 8] {
        // f(x) = x0·x1 + x2·x3 + … − c, single occurrence per variable.
        let mut expr = AlgExpr::konst(-0.05);
        let mut i = 0;
        while i + 1 < k {
            expr = expr + AlgExpr::var(i) * AlgExpr::var(i + 1);
            i += 2;
        }
        if i < k {
            expr = expr + AlgExpr::var(i);
        }
        let phi = AlgebraicIneq::new(expr).unwrap();
        let point: Vec<f64> = (0..k).map(|i| 0.4 + 0.01 * i as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| phi.epsilon_homogeneous(&point).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epsilon_linear, bench_epsilon_algebraic);
criterion_main!(benches);
