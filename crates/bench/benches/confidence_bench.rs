//! Criterion benchmarks for confidence computation (E3, E4, E15):
//! exact methods vs the Karp–Luby FPRAS as the event grows.

use confidence::{approximate_confidence, exact, FprasParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::RandomDnf;

fn bench_exact_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_confidence");
    group.sample_size(10);
    for &num_vars in &[8usize, 12, 16] {
        let gen = RandomDnf {
            num_variables: num_vars,
            num_terms: num_vars / 2,
            literals_per_term: 3,
            seed: 5,
        };
        let (event, space) = gen.generate();
        group.bench_with_input(
            BenchmarkId::new("enumeration", num_vars),
            &num_vars,
            |b, _| {
                b.iter(|| exact::by_enumeration(&event, &space, 1 << 26).unwrap());
            },
        );
        group.bench_with_input(BenchmarkId::new("shannon", num_vars), &num_vars, |b, _| {
            b.iter(|| exact::by_shannon_expansion(&event, &space).unwrap());
        });
        if event.num_terms() <= 20 {
            group.bench_with_input(
                BenchmarkId::new("inclusion_exclusion", num_vars),
                &num_vars,
                |b, _| {
                    b.iter(|| exact::by_inclusion_exclusion(&event, &space, 24).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_karp_luby(c: &mut Criterion) {
    let mut group = c.benchmark_group("karp_luby_fpras");
    group.sample_size(10);
    for &num_terms in &[8usize, 32, 128] {
        let gen = RandomDnf {
            num_variables: num_terms * 2,
            num_terms,
            literals_per_term: 3,
            seed: 9,
        };
        let (event, space) = gen.generate();
        let params = FprasParams::new(0.1, 0.05).unwrap();
        group.bench_with_input(
            BenchmarkId::new("eps_0.1_delta_0.05", num_terms),
            &num_terms,
            |b, _| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                b.iter(|| approximate_confidence(&event, &space, params, &mut rng).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_methods, bench_karp_luby);
criterion_main!(benches);
