//! Criterion benchmarks for the serving layer and the sharded executor.
//!
//! Two groups:
//!
//! * `serving_repeated` — the same query answered over and over:
//!   `cold_path` re-parses, re-validates, re-lowers and re-executes per
//!   request (the pre-serving call pattern), `warm_cache` answers from a
//!   prepared [`ServingEngine`] snapshot, paying estimation only.
//! * `sharded_join` — the large random-DB join workload executed with
//!   1/2/4/8 shards; chunked execution probes one shared key index per
//!   chunk and merges set-semantics results, so outputs are bit-identical
//!   while wall-clock drops.

use algebra::LogicalPlan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{catalog_of, EvalConfig, ServingEngine, UEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::TupleIndependentDb;

const EXACT_CONF_QUERY: &str = "conf(project[A](T))";
const FPRAS_CONF_QUERY: &str = "aconf[0.2, 0.1](project[A](T))";

fn serving_db() -> urel::UDatabase {
    TupleIndependentDb {
        num_tuples: 400,
        domain_size: 8,
        tuple_probability: None,
        seed: 11,
    }
    .database()
}

fn bench_repeated_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_repeated");
    group.sample_size(20);
    let db = serving_db();
    let catalog = catalog_of(&db).unwrap();

    for (label, text) in [
        ("exact_conf", EXACT_CONF_QUERY),
        ("fpras_conf", FPRAS_CONF_QUERY),
    ] {
        group.bench_function(BenchmarkId::new("cold_path", label), |b| {
            let engine = UEngine::new(EvalConfig::default());
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            b.iter(|| {
                // The pre-serving request cost: parse, validate, lower,
                // execute — every time.
                let query = algebra::parse_query(text).unwrap();
                let plan = LogicalPlan::lower_validated(&query, &catalog).unwrap();
                engine.evaluate_plan(&db, &plan, &mut rng).unwrap()
            });
        });
        group.bench_function(BenchmarkId::new("warm_cache", label), |b| {
            let serving = ServingEngine::new(EvalConfig::default(), db.clone()).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            serving.evaluate(text, &mut rng).unwrap(); // prepare
            b.iter(|| serving.evaluate(text, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_sharded_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_join");
    group.sample_size(10);
    let db = TupleIndependentDb {
        num_tuples: 600,
        domain_size: 40,
        tuple_probability: Some(0.4),
        seed: 5,
    }
    .database();
    let query =
        algebra::parse_query("join(project[A, B](T), rename[B -> C](project[A, B](T)))").unwrap();
    let catalog = catalog_of(&db).unwrap();
    let plan = LogicalPlan::lower_validated(&query, &catalog).unwrap();

    for shards in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            let engine = UEngine::new(EvalConfig::default().with_shards(shards));
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            b.iter(|| engine.evaluate_plan(&db, &plan, &mut rng).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repeated_queries, bench_sharded_join);
criterion_main!(benches);
