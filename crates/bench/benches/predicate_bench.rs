//! Criterion benchmarks for predicate approximation (E8, E9): the Figure 3
//! algorithm vs the naive fixed-sample baseline, for predicates at varying
//! distance from the decision boundary.

use approx::{approximate_predicate, naive_decide, ApproxPredicate, ApproximationParams};
use confidence::{Assignment, DnfEvent, IncrementalEstimator, ProbabilitySpace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn make_event(n: usize, q: f64) -> (DnfEvent, ProbabilitySpace) {
    let mut space = ProbabilitySpace::new();
    let mut terms = Vec::new();
    for _ in 0..n {
        let v = space.add_bool_variable(q).unwrap();
        terms.push(Assignment::new([(v, 0)]).unwrap());
    }
    (DnfEvent::new(terms), space)
}

fn bench_adaptive_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3_vs_naive");
    group.sample_size(10);
    // True probability ≈ 0.685; the threshold sets the margin.
    for &threshold in &[0.2f64, 0.5, 0.62] {
        let params = ApproximationParams::new(0.02, 0.05).unwrap();
        let phi = ApproxPredicate::threshold(1, 0, threshold);
        group.bench_with_input(
            BenchmarkId::new("adaptive", format!("threshold_{threshold}")),
            &threshold,
            |b, _| {
                b.iter(|| {
                    let (event, space) = make_event(6, 0.175);
                    let mut est = IncrementalEstimator::new(event, space).unwrap();
                    let mut rng = ChaCha8Rng::seed_from_u64(1);
                    approximate_predicate(&phi, std::slice::from_mut(&mut est), params, &mut rng)
                        .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("threshold_{threshold}")),
            &threshold,
            |b, _| {
                b.iter(|| {
                    let (event, space) = make_event(6, 0.175);
                    let mut est = IncrementalEstimator::new(event, space).unwrap();
                    let mut rng = ChaCha8Rng::seed_from_u64(1);
                    naive_decide(&phi, std::slice::from_mut(&mut est), params, &mut rng).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive_vs_naive);
criterion_main!(benches);
