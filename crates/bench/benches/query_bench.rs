//! Criterion benchmarks for whole-query evaluation (E1, E12, E13, E15):
//! the succinct engine vs the possible-worlds reference on the coin example,
//! approximate-confidence query scaling, and the Theorem 6.7 adaptive driver
//! vs a fixed iteration budget.

use algebra::parse_query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{
    evaluate_adaptive, evaluate_naive, ApproxSelectMode, ConfidenceMode, EvalConfig, UEngine,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::{coins, SensorWorkload, TupleIndependentDb};

fn bench_coin_example(c: &mut Criterion) {
    let mut group = c.benchmark_group("example_2_2");
    group.sample_size(20);
    let query = coins::query_u(2);
    let udb = coins::coin_udatabase();
    let pdb = coins::coin_database();
    group.bench_function("u_relational_engine", |b| {
        let engine = UEngine::new(EvalConfig::exact());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| engine.evaluate(&udb, &query, &mut rng).unwrap());
    });
    group.bench_function("possible_worlds_engine", |b| {
        b.iter(|| evaluate_naive(&pdb, &query).unwrap());
    });
    group.finish();
}

fn bench_query_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_conf_scaling");
    group.sample_size(10);
    let query = parse_query("aconf[0.2, 0.1](project[A](T))").unwrap();
    for &n in &[10usize, 40, 160] {
        let gen = TupleIndependentDb {
            num_tuples: n,
            domain_size: 4,
            tuple_probability: Some(0.3),
            seed: 7,
        };
        let db = gen.database();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let engine = UEngine::new(EvalConfig::default());
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            b.iter(|| engine.evaluate(&db, &query, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_adaptive_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_6_7");
    group.sample_size(10);
    let workload = SensorWorkload {
        num_sensors: 6,
        readings_per_sensor: 4,
        high_probability: 0.45,
        seed: 29,
    };
    let db = workload.database();
    let query = SensorWorkload::alarm_query(0.7, 0.05, 0.05);
    group.bench_function("adaptive_doubling", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| evaluate_adaptive(&db, &query, 0.05, 0.05, &mut rng).unwrap());
    });
    group.bench_function("fixed_l_4096", |b| {
        let engine = UEngine::new(EvalConfig {
            approx_select: ApproxSelectMode::FixedIterations(4096),
            confidence: ConfidenceMode::Exact,
            ..EvalConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| engine.evaluate(&db, &query, &mut rng).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_coin_example,
    bench_query_scaling,
    bench_adaptive_query
);
criterion_main!(benches);
