//! Criterion benchmarks for the logical-plan / physical-operator pipeline on
//! the `sensors` and `cleaning` workloads.
//!
//! Three paths per workload:
//!
//! * `lower_per_call` — the pre-refactor call pattern: every evaluation
//!   lowers the query (validation + DAG construction) and then executes, as
//!   the old recursive evaluator implicitly re-walked the syntax tree per
//!   call.
//! * `prelowered_pipeline` — the plan is lowered once and
//!   `UEngine::evaluate_plan` re-executes it, the pattern the Theorem 6.7
//!   adaptive driver uses.
//! * `adaptive_sigma` — the full adaptive σ̂ evaluation (parallel
//!   per-candidate Figure 3 decisions).

use algebra::LogicalPlan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{catalog_of, EvalConfig, UEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::{CleaningWorkload, SensorWorkload};

fn bench_sensors(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_sensors");
    group.sample_size(20);
    let workload = SensorWorkload {
        num_sensors: 8,
        readings_per_sensor: 4,
        high_probability: 0.45,
        seed: 29,
    };
    let db = workload.database();
    let query = SensorWorkload::alarm_query(0.7, 0.05, 0.05);
    let catalog = catalog_of(&db).unwrap();
    let plan = LogicalPlan::lower_validated(&query, &catalog).unwrap();
    let engine = UEngine::new(EvalConfig::exact());

    group.bench_function(BenchmarkId::new("lower_per_call", "exact"), |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| engine.evaluate(&db, &query, &mut rng).unwrap());
    });
    group.bench_function(BenchmarkId::new("prelowered_pipeline", "exact"), |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| engine.evaluate_plan(&db, &plan, &mut rng).unwrap());
    });
    group.bench_function(BenchmarkId::new("adaptive_sigma", "default"), |b| {
        let adaptive = UEngine::new(EvalConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| adaptive.evaluate_plan(&db, &plan, &mut rng).unwrap());
    });
    group.finish();
}

fn bench_cleaning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_cleaning");
    group.sample_size(10);
    let workload = CleaningWorkload {
        num_records: 8,
        alternatives_per_record: 2,
        num_cities: 3,
        seed: 13,
    };
    let db = workload.database();
    let query = CleaningWorkload::egd_conditional_query(0);
    let catalog = catalog_of(&db).unwrap();
    let plan = LogicalPlan::lower_validated(&query, &catalog).unwrap();
    let engine = UEngine::new(EvalConfig::exact());

    group.bench_function(BenchmarkId::new("lower_per_call", "egd"), |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| engine.evaluate(&db, &query, &mut rng).unwrap());
    });
    group.bench_function(BenchmarkId::new("prelowered_pipeline", "egd"), |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| engine.evaluate_plan(&db, &plan, &mut rng).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_sensors, bench_cleaning);
criterion_main!(benches);
