//! ε₀-singularity detection (Definition 5.6).
//!
//! A point `(p₁, …, p_k)` is an ε₀-singularity of a predicate φ if some point
//! `(x₁, …, x_k)` with `|p_i − x_i| ≤ ε₀·p_i` for all `i` disagrees with it
//! on φ.  Predicates cannot be approximated at singularities (Example 5.7:
//! the tuple-certainty test `conf = 1` can never be confirmed), and
//! Theorem 5.8's guarantee explicitly excludes them, so the query-level error
//! analysis needs a way to tell whether a true value is singular.
//!
//! Detection uses three-valued interval evaluation over the absolute box of
//! Definition 5.6: every atom is evaluated to *true*, *false* or *unknown*
//! via interval arithmetic, and the verdicts are combined with Kleene logic.
//! A definite verdict proves the box homogeneous (not a singularity); an
//! unknown verdict is reported as "possibly singular", which is the
//! conservative direction for all uses in this crate.  For predicates built
//! solely from linear atoms the interval evaluation is exact, so "possibly
//! singular" coincides with "singular" up to boundary cases.

use crate::error::Result;
use crate::interval::Orthotope;
use crate::linear::LinearIneq;
use crate::predicate::{ApproxPredicate, Atom};

/// Verdict of a three-valued evaluation over a box.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoxVerdict {
    /// The predicate holds everywhere on the box.
    AlwaysTrue,
    /// The predicate fails everywhere on the box.
    AlwaysFalse,
    /// The predicate may take both truth values on the box (or the interval
    /// analysis cannot tell).
    Unknown,
}

impl BoxVerdict {
    fn negate(self) -> BoxVerdict {
        match self {
            BoxVerdict::AlwaysTrue => BoxVerdict::AlwaysFalse,
            BoxVerdict::AlwaysFalse => BoxVerdict::AlwaysTrue,
            BoxVerdict::Unknown => BoxVerdict::Unknown,
        }
    }

    fn and(self, other: BoxVerdict) -> BoxVerdict {
        use BoxVerdict::*;
        match (self, other) {
            (AlwaysFalse, _) | (_, AlwaysFalse) => AlwaysFalse,
            (AlwaysTrue, AlwaysTrue) => AlwaysTrue,
            _ => Unknown,
        }
    }

    fn or(self, other: BoxVerdict) -> BoxVerdict {
        use BoxVerdict::*;
        match (self, other) {
            (AlwaysTrue, _) | (_, AlwaysTrue) => AlwaysTrue,
            (AlwaysFalse, AlwaysFalse) => AlwaysFalse,
            _ => Unknown,
        }
    }
}

fn atom_verdict(atom: &Atom, orthotope: &Orthotope) -> Result<BoxVerdict> {
    match atom {
        Atom::Linear(l) => linear_verdict(l, orthotope),
        Atom::Algebraic(a) => match a.expr().eval_interval(orthotope) {
            Ok(range) => Ok(if range.lo >= 0.0 {
                BoxVerdict::AlwaysTrue
            } else if range.hi < 0.0 {
                BoxVerdict::AlwaysFalse
            } else {
                BoxVerdict::Unknown
            }),
            // Division by an interval straddling zero: the sign cannot be
            // determined, which is exactly the conservative Unknown case.
            Err(crate::error::ApproxError::DivisionByZero) => Ok(BoxVerdict::Unknown),
            Err(e) => Err(e),
        },
    }
}

fn linear_verdict(ineq: &LinearIneq, orthotope: &Orthotope) -> Result<BoxVerdict> {
    let range = ineq.lhs_range(orthotope)?;
    Ok(if range.lo >= ineq.bound {
        BoxVerdict::AlwaysTrue
    } else if range.hi < ineq.bound {
        BoxVerdict::AlwaysFalse
    } else {
        BoxVerdict::Unknown
    })
}

/// Three-valued evaluation of a predicate over an arbitrary orthotope.
pub fn evaluate_over_box(predicate: &ApproxPredicate, orthotope: &Orthotope) -> Result<BoxVerdict> {
    Ok(match predicate {
        ApproxPredicate::True => BoxVerdict::AlwaysTrue,
        ApproxPredicate::False => BoxVerdict::AlwaysFalse,
        ApproxPredicate::Atom(a) => atom_verdict(a, orthotope)?,
        ApproxPredicate::And(a, b) => {
            evaluate_over_box(a, orthotope)?.and(evaluate_over_box(b, orthotope)?)
        }
        ApproxPredicate::Or(a, b) => {
            evaluate_over_box(a, orthotope)?.or(evaluate_over_box(b, orthotope)?)
        }
        ApproxPredicate::Not(a) => evaluate_over_box(a, orthotope)?.negate(),
    })
}

/// Tests whether the true point `p` is (possibly) an ε₀-singularity of the
/// predicate: `true` means the absolute box of Definition 5.6 around `p`
/// could contain points of both truth values.
pub fn is_possibly_singular(predicate: &ApproxPredicate, p: &[f64], epsilon0: f64) -> Result<bool> {
    let boxed = Orthotope::absolute(p, epsilon0)?;
    Ok(matches!(
        evaluate_over_box(predicate, &boxed)?,
        BoxVerdict::Unknown
    ))
}

/// Distance-based helper for threshold predicates `x_i ≥ c`: the set of
/// ε₀ for which `p` is *not* a singularity is `ε₀ < |p_i − c| / p_i`; this
/// returns that critical ratio (`+∞` if `p_i = 0`).  Used by workload
/// generators to place true values at controlled distances from the decision
/// boundary.
pub fn threshold_singularity_margin(p_i: f64, c: f64) -> f64 {
    if p_i == 0.0 {
        f64::INFINITY
    } else {
        (p_i - c).abs() / p_i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebraic::{AlgExpr, AlgebraicIneq};

    #[test]
    fn threshold_singularity_matches_definition() {
        // Example 5.7: conf ≥ c with p exactly at c is singular for every
        // ε₀ > 0; p away from c stops being singular once ε₀ is below the
        // relative distance.
        let phi = ApproxPredicate::threshold(1, 0, 0.5);
        assert!(is_possibly_singular(&phi, &[0.5], 0.01).unwrap());
        assert!(is_possibly_singular(&phi, &[0.5], 1e-9).unwrap());
        // p = 0.6: margin is |0.6 − 0.5| / 0.6 = 1/6.
        assert!(!is_possibly_singular(&phi, &[0.6], 0.1).unwrap());
        assert!(is_possibly_singular(&phi, &[0.6], 0.2).unwrap());
        let margin = threshold_singularity_margin(0.6, 0.5);
        assert!((margin - 1.0 / 6.0).abs() < 1e-12);
        assert!(!is_possibly_singular(&phi, &[0.6], margin * 0.99).unwrap());
        assert!(is_possibly_singular(&phi, &[0.6], margin * 1.01).unwrap());
        assert_eq!(threshold_singularity_margin(0.0, 0.5), f64::INFINITY);
    }

    #[test]
    fn certainty_test_is_always_singular_from_below() {
        // The tuple-certainty test conf ≥ 1 at any true value p < 1 within
        // ε₀ of 1 is singular, and at p = 1 it is singular for every ε₀ > 0
        // because the box always contains values below 1.
        let phi = ApproxPredicate::threshold(1, 0, 1.0);
        assert!(is_possibly_singular(&phi, &[1.0], 0.001).unwrap());
        assert!(is_possibly_singular(&phi, &[0.999], 0.01).unwrap());
        assert!(!is_possibly_singular(&phi, &[0.9], 0.05).unwrap());
    }

    #[test]
    fn boolean_combinations_use_kleene_logic() {
        let clear_true = ApproxPredicate::threshold(2, 0, 0.1);
        let clear_false = ApproxPredicate::threshold(2, 1, 0.9);
        let near_boundary = ApproxPredicate::threshold(2, 1, 0.5);
        let p = [0.5, 0.5];
        // true ∧ (x1 ≥ 0.9): definite false.
        assert_eq!(
            evaluate_over_box(
                &clear_true.clone().and(clear_false.clone()),
                &Orthotope::absolute(&p, 0.1).unwrap()
            )
            .unwrap(),
            BoxVerdict::AlwaysFalse
        );
        // true ∨ anything: definite true even if the other side is unknown.
        assert_eq!(
            evaluate_over_box(
                &clear_true.clone().or(near_boundary.clone()),
                &Orthotope::absolute(&p, 0.1).unwrap()
            )
            .unwrap(),
            BoxVerdict::AlwaysTrue
        );
        // unknown ∧ true: unknown, i.e. possibly singular.
        assert!(
            is_possibly_singular(&clear_true.clone().and(near_boundary.clone()), &p, 0.1).unwrap()
        );
        // Negation flips definite verdicts.
        assert_eq!(
            evaluate_over_box(&clear_false.not(), &Orthotope::absolute(&p, 0.1).unwrap()).unwrap(),
            BoxVerdict::AlwaysTrue
        );
    }

    #[test]
    fn algebraic_atoms_use_interval_arithmetic() {
        // x0/x1 ≥ 0.5 at (0.5, 0.5): ratio is 1, clearly above 0.5 for a
        // small box, unknown for a box wide enough to reach the boundary.
        let phi = ApproxPredicate::algebraic(
            AlgebraicIneq::new(AlgExpr::var(0) / AlgExpr::var(1) - AlgExpr::konst(0.5)).unwrap(),
        );
        assert!(!is_possibly_singular(&phi, &[0.5, 0.5], 0.1).unwrap());
        assert!(is_possibly_singular(&phi, &[0.5, 0.5], 0.35).unwrap());
        // A denominator interval straddling zero is conservatively unknown.
        let psi = ApproxPredicate::algebraic(
            AlgebraicIneq::new(AlgExpr::konst(1.0) / AlgExpr::var(0) - AlgExpr::konst(2.0))
                .unwrap(),
        );
        assert!(is_possibly_singular(&psi, &[0.001], 1.0).unwrap());
    }

    #[test]
    fn constants_are_never_singular() {
        assert!(!is_possibly_singular(&ApproxPredicate::True, &[0.5], 0.5).unwrap());
        assert!(!is_possibly_singular(&ApproxPredicate::False, &[0.5], 0.5).unwrap());
    }
}
