//! Boolean combinations of atomic predicates over approximated values and
//! their ε-composition (Section 5).
//!
//! The paper first pushes negations into the atoms (De Morgan + negated
//! comparison operators) and then composes
//! `ε_{φ∧ψ} = min(ε_φ, ε_ψ)` and `ε_{φ∨ψ} = max(ε_φ, ε_ψ)`.  Implemented
//! directly on the predicate tree, this becomes the dual rule of
//! [`ApproxPredicate::epsilon_homogeneous`]: for a conjunction that is true
//! at `p̂` all conjuncts must stay true (min), for one that is false it
//! suffices that one false conjunct stays false (max), and symmetrically for
//! disjunctions.  The resulting ε always describes an orthotope on which the
//! *whole* predicate is constant, which is exactly what Lemma 5.1 needs.

use crate::algebraic::AlgebraicIneq;
use crate::error::{ApproxError, Result};
use crate::interval::Orthotope;
use crate::linear::LinearIneq;
use std::fmt;

/// An atomic predicate over approximated values.
#[derive(Clone, Debug, PartialEq)]
pub enum Atom {
    /// A linear inequality `Σ a_i·x_i ≥ b` (Theorem 5.2, closed-form ε).
    Linear(LinearIneq),
    /// A single-occurrence algebraic inequality `f(x⃗) ≥ 0` (Theorem 5.5,
    /// ε by corner check and binary search).
    Algebraic(AlgebraicIneq),
}

impl Atom {
    /// Evaluates the atom at a point.
    pub fn eval(&self, point: &[f64]) -> Result<bool> {
        match self {
            Atom::Linear(l) => l.eval(point),
            Atom::Algebraic(a) => a.eval(point),
        }
    }

    /// Number of approximated values the atom mentions (highest index + 1).
    pub fn arity(&self) -> usize {
        match self {
            Atom::Linear(l) => l.arity(),
            Atom::Algebraic(a) => a.arity(),
        }
    }

    /// The homogeneous ε of the atom around `p̂` (on whichever side of the
    /// decision boundary `p̂` lies).
    pub fn epsilon_homogeneous(&self, p_hat: &[f64]) -> Result<f64> {
        match self {
            Atom::Linear(l) => match l.epsilon_homogeneous(p_hat) {
                Ok(e) => Ok(e),
                // A point exactly on a through-the-origin hyperplane has no
                // positive homogeneous ε.
                Err(ApproxError::DegenerateInequality(_)) => Ok(0.0),
                Err(e) => Err(e),
            },
            Atom::Algebraic(a) => a.epsilon_homogeneous(p_hat),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Linear(l) => write!(f, "{l}"),
            Atom::Algebraic(a) => write!(f, "{a}"),
        }
    }
}

/// A Boolean combination of atoms over approximated values.
#[derive(Clone, Debug, PartialEq)]
pub enum ApproxPredicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// An atomic predicate.
    Atom(Atom),
    /// Conjunction.
    And(Box<ApproxPredicate>, Box<ApproxPredicate>),
    /// Disjunction.
    Or(Box<ApproxPredicate>, Box<ApproxPredicate>),
    /// Negation.
    Not(Box<ApproxPredicate>),
}

impl ApproxPredicate {
    /// An atomic linear inequality.
    pub fn linear(ineq: LinearIneq) -> ApproxPredicate {
        ApproxPredicate::Atom(Atom::Linear(ineq))
    }

    /// An atomic algebraic inequality.
    pub fn algebraic(ineq: AlgebraicIneq) -> ApproxPredicate {
        ApproxPredicate::Atom(Atom::Algebraic(ineq))
    }

    /// The threshold predicate `x_var ≥ c`.
    pub fn threshold(num_values: usize, var: usize, c: f64) -> ApproxPredicate {
        ApproxPredicate::linear(LinearIneq::threshold(num_values, var, c))
    }

    /// Conjunction helper.
    pub fn and(self, other: ApproxPredicate) -> ApproxPredicate {
        ApproxPredicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: ApproxPredicate) -> ApproxPredicate {
        ApproxPredicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> ApproxPredicate {
        ApproxPredicate::Not(Box::new(self))
    }

    /// Number of approximated values the predicate mentions (highest index
    /// + 1 over all atoms).
    pub fn arity(&self) -> usize {
        match self {
            ApproxPredicate::True | ApproxPredicate::False => 0,
            ApproxPredicate::Atom(a) => a.arity(),
            ApproxPredicate::And(a, b) | ApproxPredicate::Or(a, b) => a.arity().max(b.arity()),
            ApproxPredicate::Not(a) => a.arity(),
        }
    }

    /// Evaluates the predicate at a point of (estimated or true) values.
    pub fn eval(&self, point: &[f64]) -> Result<bool> {
        match self {
            ApproxPredicate::True => Ok(true),
            ApproxPredicate::False => Ok(false),
            ApproxPredicate::Atom(a) => a.eval(point),
            ApproxPredicate::And(a, b) => Ok(a.eval(point)? && b.eval(point)?),
            ApproxPredicate::Or(a, b) => Ok(a.eval(point)? || b.eval(point)?),
            ApproxPredicate::Not(a) => Ok(!a.eval(point)?),
        }
    }

    /// The largest ε (up to the atoms' own search precision) such that the
    /// predicate is constant on the relative orthotope around `p̂` — the
    /// quantity written `ε_ψ(p̂₁, …, p̂_k)` in Section 5, with
    /// `ψ = φ` if `φ(p̂)` holds and `ψ = ¬φ` otherwise.
    pub fn epsilon_homogeneous(&self, p_hat: &[f64]) -> Result<f64> {
        match self {
            // Constants are homogeneous everywhere.
            ApproxPredicate::True | ApproxPredicate::False => Ok(f64::INFINITY),
            ApproxPredicate::Atom(a) => a.epsilon_homogeneous(p_hat),
            ApproxPredicate::And(a, b) => {
                let (ea, eb) = (a.epsilon_homogeneous(p_hat)?, b.epsilon_homogeneous(p_hat)?);
                if self.eval(p_hat)? {
                    // Both conjuncts are true and must remain true.
                    Ok(ea.min(eb))
                } else {
                    // At least one conjunct is false; keeping any false one
                    // false keeps the conjunction false.
                    let mut best: f64 = 0.0;
                    if !a.eval(p_hat)? {
                        best = best.max(ea);
                    }
                    if !b.eval(p_hat)? {
                        best = best.max(eb);
                    }
                    Ok(best)
                }
            }
            ApproxPredicate::Or(a, b) => {
                let (ea, eb) = (a.epsilon_homogeneous(p_hat)?, b.epsilon_homogeneous(p_hat)?);
                if self.eval(p_hat)? {
                    // Keeping any true disjunct true keeps the disjunction
                    // true.
                    let mut best: f64 = 0.0;
                    if a.eval(p_hat)? {
                        best = best.max(ea);
                    }
                    if b.eval(p_hat)? {
                        best = best.max(eb);
                    }
                    Ok(best)
                } else {
                    // Both disjuncts are false and must remain false.
                    Ok(ea.min(eb))
                }
            }
            ApproxPredicate::Not(a) => a.epsilon_homogeneous(p_hat),
        }
    }

    /// Checks homogeneity of the predicate over an explicit orthotope by
    /// evaluating all corners (used by tests and by the singularity check for
    /// predicates whose atoms are all monotone in each variable).
    pub fn corners_agree(&self, orthotope: &Orthotope, reference: bool) -> Result<bool> {
        for corner in orthotope.corners() {
            match self.eval(&corner) {
                Ok(v) if v == reference => {}
                Ok(_) => return Ok(false),
                Err(ApproxError::DivisionByZero) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

impl fmt::Display for ApproxPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxPredicate::True => write!(f, "true"),
            ApproxPredicate::False => write!(f, "false"),
            ApproxPredicate::Atom(a) => write!(f, "{a}"),
            ApproxPredicate::And(a, b) => write!(f, "({a} and {b})"),
            ApproxPredicate::Or(a, b) => write!(f, "({a} or {b})"),
            ApproxPredicate::Not(a) => write!(f, "(not {a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebraic::AlgExpr;

    #[test]
    fn evaluation_of_combinations() {
        let p = ApproxPredicate::threshold(2, 0, 0.5).and(ApproxPredicate::threshold(2, 1, 0.25));
        assert!(p.eval(&[0.6, 0.3]).unwrap());
        assert!(!p.eval(&[0.6, 0.2]).unwrap());
        let q = p.clone().or(ApproxPredicate::True);
        assert!(q.eval(&[0.0, 0.0]).unwrap());
        let r = p.not();
        assert!(r.eval(&[0.6, 0.2]).unwrap());
        assert_eq!(r.arity(), 2);
        assert!(!ApproxPredicate::False.eval(&[]).unwrap());
    }

    #[test]
    fn atom_epsilon_delegates_to_the_right_theorem() {
        let lin = Atom::Linear(LinearIneq::ratio_at_least(2, 0, 1, 0.5));
        let alg = Atom::Algebraic(
            AlgebraicIneq::new(AlgExpr::var(0) / AlgExpr::var(1) - AlgExpr::konst(0.5)).unwrap(),
        );
        let p_hat = [0.5, 0.5];
        let e_lin = lin.epsilon_homogeneous(&p_hat).unwrap();
        let e_alg = alg.epsilon_homogeneous(&p_hat).unwrap();
        assert!((e_lin - 1.0 / 3.0).abs() < 1e-9);
        assert!((e_alg - 1.0 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn conjunction_takes_the_minimum_when_true() {
        // x0 ≥ 0.25 (wide margin at 0.5) AND x0 ≥ 0.45 (narrow margin).
        let wide = ApproxPredicate::threshold(1, 0, 0.25);
        let narrow = ApproxPredicate::threshold(1, 0, 0.45);
        let p = wide.clone().and(narrow.clone());
        let e_wide = wide.epsilon_homogeneous(&[0.5]).unwrap();
        let e_narrow = narrow.epsilon_homogeneous(&[0.5]).unwrap();
        let e_and = p.epsilon_homogeneous(&[0.5]).unwrap();
        assert!(e_wide > e_narrow);
        assert!((e_and - e_narrow).abs() < 1e-12);
    }

    #[test]
    fn disjunction_takes_the_maximum_of_true_disjuncts() {
        let wide = ApproxPredicate::threshold(1, 0, 0.3);
        let narrow = ApproxPredicate::threshold(1, 0, 0.45);
        let false_branch = ApproxPredicate::threshold(1, 0, 0.9);
        let p = narrow.clone().or(wide.clone()).or(false_branch);
        let e_wide = wide.epsilon_homogeneous(&[0.5]).unwrap();
        let e_or = p.epsilon_homogeneous(&[0.5]).unwrap();
        assert!((e_or - e_wide).abs() < 1e-12);
    }

    #[test]
    fn false_conjunction_uses_the_false_conjunct() {
        // x0 ≥ 0.9 is false at 0.5 with a wide false-side margin; the
        // conjunction with a true predicate is false and inherits that margin.
        let failing = ApproxPredicate::threshold(1, 0, 0.9);
        let passing = ApproxPredicate::threshold(1, 0, 0.25);
        let p = failing.clone().and(passing);
        assert!(!p.eval(&[0.5]).unwrap());
        let e = p.epsilon_homogeneous(&[0.5]).unwrap();
        let e_failing = failing.epsilon_homogeneous(&[0.5]).unwrap();
        assert!((e - e_failing).abs() < 1e-12);
        assert!(e > 0.0);
    }

    #[test]
    fn negation_is_transparent_for_homogeneity() {
        let p = ApproxPredicate::threshold(1, 0, 0.25);
        let n = p.clone().not();
        assert_eq!(
            p.epsilon_homogeneous(&[0.5]).unwrap(),
            n.epsilon_homogeneous(&[0.5]).unwrap()
        );
        assert!(n.eval(&[0.5]).unwrap() != p.eval(&[0.5]).unwrap());
    }

    #[test]
    fn homogeneous_epsilon_is_sound_on_corners() {
        // The predicate is constant on the orthotope described by the ε the
        // composition rule reports (checked at corners; all atoms here are
        // linear, for which corners are the extremes).
        let cases: Vec<(ApproxPredicate, Vec<f64>)> = vec![
            (
                ApproxPredicate::linear(LinearIneq::ratio_at_least(2, 0, 1, 0.5))
                    .and(ApproxPredicate::threshold(2, 1, 0.1)),
                vec![0.5, 0.5],
            ),
            (
                ApproxPredicate::threshold(2, 0, 0.7).or(ApproxPredicate::threshold(2, 1, 0.05)),
                vec![0.5, 0.2],
            ),
            (
                ApproxPredicate::threshold(2, 0, 0.7)
                    .and(ApproxPredicate::threshold(2, 1, 0.6))
                    .not(),
                vec![0.5, 0.9],
            ),
        ];
        for (pred, p_hat) in cases {
            let reference = pred.eval(&p_hat).unwrap();
            let eps = pred.epsilon_homogeneous(&p_hat).unwrap();
            assert!(eps > 0.0, "{pred} at {p_hat:?}");
            let eps = (eps * 0.999).min(0.999);
            let orthotope = Orthotope::relative(&p_hat, eps).unwrap();
            assert!(
                pred.corners_agree(&orthotope, reference).unwrap(),
                "{pred} not homogeneous at eps {eps}"
            );
        }
    }

    #[test]
    fn constants_are_homogeneous_everywhere() {
        assert_eq!(
            ApproxPredicate::True.epsilon_homogeneous(&[0.1]).unwrap(),
            f64::INFINITY
        );
        assert_eq!(
            ApproxPredicate::False.epsilon_homogeneous(&[0.1]).unwrap(),
            f64::INFINITY
        );
        assert_eq!(ApproxPredicate::True.arity(), 0);
    }

    #[test]
    fn boundary_point_yields_zero_epsilon() {
        // conf = 1/2 exactly: the equality-style predicate x0 ≥ 0.5 ∧ x0 ≤ 0.5
        // has ε = 0 at 0.5 (cannot be approximated; Example 5.7's situation).
        let eq_half = ApproxPredicate::threshold(1, 0, 0.5)
            .and(ApproxPredicate::linear(LinearIneq::new(vec![-1.0], -0.5)));
        let e = eq_half.epsilon_homogeneous(&[0.5]).unwrap();
        assert_eq!(e, 0.0);
    }

    #[test]
    fn display() {
        let p = ApproxPredicate::threshold(1, 0, 0.5).not();
        assert_eq!(p.to_string(), "(not 1·x0 >= 0.5)");
    }
}
