//! The naive predicate-decision baseline sketched in Section 5.
//!
//! "A naive procedure is to compute each `p̂_i` using
//! `m = 3·|F|·log(2/δ)/ε₀²` [samples].  Let `ψ = φ` if `φ(p̂…)` is true and
//! `¬φ` otherwise.  If `ε_ψ(p̂…) ≥ ε₀`, then … our answer for φ is correct
//! with probability at least `1 − δ`."  The adaptive algorithm of Figure 3
//! improves on this by stopping as soon as the current estimates support the
//! decision; the closing paragraph of Section 5 quantifies the saving as
//! close to a factor of `(ε²_φ − ε²₀)/ε²_φ` of the estimator invocations.
//! This module implements the naive baseline so the benchmark harness can
//! measure that saving.

use crate::algorithm::{ApproximationParams, Decision};
use crate::error::{ApproxError, Result};
use crate::predicate::ApproxPredicate;
use confidence::chernoff;
use confidence::IncrementalEstimator;
use rand::Rng;

/// Decides `phi` with the naive fixed-sample procedure: every estimator
/// draws `l₀ = ⌈3·ln(2·k/δ)/ε₀²⌉` batches (so `l₀·|F_i|` samples) up front,
/// then the predicate is evaluated once.
///
/// The per-estimator δ is split evenly (δ/k) so that the summed error bound
/// of Lemma 5.1 meets the overall target, mirroring the balanced-δ choice the
/// adaptive algorithm makes implicitly.
pub fn naive_decide<R: Rng + ?Sized>(
    phi: &ApproxPredicate,
    estimators: &mut [IncrementalEstimator],
    params: ApproximationParams,
    rng: &mut R,
) -> Result<Decision> {
    if phi.arity() > estimators.len() {
        return Err(ApproxError::ArityMismatch {
            expected: phi.arity(),
            actual: estimators.len(),
        });
    }
    let k = estimators.len().max(1);
    let per_value_delta = params.delta / k as f64;
    let iterations = chernoff::required_iterations(params.epsilon0, per_value_delta)
        .map_err(ApproxError::from)?;

    for est in estimators.iter_mut() {
        for _ in 0..iterations {
            est.add_batch(rng);
        }
    }

    let estimates: Vec<f64> = estimators
        .iter()
        .map(IncrementalEstimator::estimate)
        .collect();
    let value = phi.eval(&estimates)?;
    let eps_psi = phi.epsilon_homogeneous(&estimates)?;
    let converged_above_epsilon0 = eps_psi >= params.epsilon0;
    let epsilon = eps_psi.max(params.epsilon0).min(0.999_999);

    let mut error_bound = 0.0;
    for est in estimators.iter() {
        // The naive procedure only ever certifies at ε₀.
        error_bound += est.error_bound(params.epsilon0)?;
    }
    let samples = estimators.iter().map(IncrementalEstimator::samples).sum();

    Ok(Decision {
        value,
        error_bound: error_bound.min(0.5),
        epsilon,
        iterations,
        samples,
        estimates,
        converged_above_epsilon0,
    })
}

/// The factor by which the adaptive algorithm's estimator invocations are
/// expected to undercut the naive procedure's, `(ε²_φ − ε²₀)/ε²_φ`
/// (the closing claim of Section 5).  Returns 0 when `ε_φ ≤ ε₀`.
pub fn expected_saving_factor(epsilon_phi: f64, epsilon0: f64) -> f64 {
    if epsilon_phi <= epsilon0 || epsilon_phi <= 0.0 {
        return 0.0;
    }
    (epsilon_phi * epsilon_phi - epsilon0 * epsilon0) / (epsilon_phi * epsilon_phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::approximate_predicate;
    use confidence::{Assignment, DnfEvent, ProbabilitySpace};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn estimator(n: usize, q: f64) -> (IncrementalEstimator, f64) {
        let mut space = ProbabilitySpace::new();
        let mut terms = Vec::new();
        for _ in 0..n {
            let v = space.add_bool_variable(q).unwrap();
            terms.push(Assignment::new([(v, 0)]).unwrap());
        }
        let exact = 1.0 - (1.0 - q).powi(n as i32);
        (
            IncrementalEstimator::new(DnfEvent::new(terms), space).unwrap(),
            exact,
        )
    }

    #[test]
    fn naive_decides_correctly_with_the_prescribed_sample_count() {
        let (mut est, exact) = estimator(6, 0.175);
        let phi = ApproxPredicate::threshold(1, 0, 0.3);
        let params = ApproximationParams::new(0.05, 0.05).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let d = naive_decide(&phi, std::slice::from_mut(&mut est), params, &mut rng).unwrap();
        assert!(d.value);
        assert!(d.converged_above_epsilon0);
        assert!((d.estimates[0] - exact).abs() < 0.05);
        // Exactly l₀ batches were drawn.
        let l0 = chernoff::required_iterations(0.05, 0.05).unwrap();
        assert_eq!(d.iterations, l0);
        assert_eq!(d.samples, (l0 * est.num_terms()) as u64);
        assert!(d.error_bound <= 0.05 + 1e-9);
    }

    #[test]
    fn adaptive_uses_fewer_samples_on_easy_instances() {
        // A predicate with a wide margin: the adaptive algorithm should need
        // markedly fewer estimator invocations than the naive baseline.
        let phi = ApproxPredicate::threshold(1, 0, 0.2);
        let params = ApproximationParams::new(0.02, 0.05).unwrap();

        let (mut est_naive, _) = estimator(6, 0.175);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let naive =
            naive_decide(&phi, std::slice::from_mut(&mut est_naive), params, &mut rng).unwrap();

        let (mut est_adaptive, _) = estimator(6, 0.175);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let adaptive = approximate_predicate(
            &phi,
            std::slice::from_mut(&mut est_adaptive),
            params,
            &mut rng,
        )
        .unwrap();

        assert_eq!(naive.value, adaptive.value);
        assert!(
            adaptive.samples * 2 < naive.samples,
            "adaptive {} vs naive {}",
            adaptive.samples,
            naive.samples
        );
    }

    #[test]
    fn saving_factor_formula() {
        assert_eq!(expected_saving_factor(0.0, 0.01), 0.0);
        assert_eq!(expected_saving_factor(0.01, 0.05), 0.0);
        let f = expected_saving_factor(0.5, 0.05);
        assert!((f - (0.25 - 0.0025) / 0.25).abs() < 1e-12);
        assert!(expected_saving_factor(0.5, 0.01) > expected_saving_factor(0.5, 0.2));
    }

    #[test]
    fn arity_mismatch() {
        let phi = ApproxPredicate::threshold(3, 2, 0.5);
        let params = ApproximationParams::new(0.05, 0.05).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(matches!(
            naive_decide(&phi, &mut [], params, &mut rng),
            Err(ApproxError::ArityMismatch { .. })
        ));
    }
}
