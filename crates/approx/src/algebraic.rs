//! Algebraic predicates over approximated values and the ε-maximisation of
//! Theorem 5.5 (corner-point check plus binary search).
//!
//! Theorem 5.5 covers predicates `f(x₁, …, x_k) ≥ 0` where `f` is built from
//! constants, `+`, `−`, `·`, `/` and **exactly one occurrence** of each
//! variable.  For such `f`, fixing all variables but one yields a monotonic
//! function, so if all `2^k` corner points of the relative orthotope agree
//! with the centre point on the predicate, every point of the orthotope does;
//! ε can then be maximised by binary search.

use crate::error::{ApproxError, Result};
use crate::interval::{Interval, Orthotope};
use std::fmt;

/// An algebraic expression over approximated values `x_0, …, x_{k−1}`.
#[derive(Clone, Debug, PartialEq)]
pub enum AlgExpr {
    /// A constant.
    Const(f64),
    /// The i-th approximated value.
    Var(usize),
    /// Negation.
    Neg(Box<AlgExpr>),
    /// Addition.
    Add(Box<AlgExpr>, Box<AlgExpr>),
    /// Subtraction.
    Sub(Box<AlgExpr>, Box<AlgExpr>),
    /// Multiplication.
    Mul(Box<AlgExpr>, Box<AlgExpr>),
    /// Division.
    Div(Box<AlgExpr>, Box<AlgExpr>),
}

impl AlgExpr {
    /// Constant expression.
    pub fn konst(v: f64) -> AlgExpr {
        AlgExpr::Const(v)
    }

    /// The i-th approximated value.
    pub fn var(i: usize) -> AlgExpr {
        AlgExpr::Var(i)
    }

    /// Occurrence count per variable index.
    pub fn occurrences(&self) -> Vec<(usize, usize)> {
        fn collect(e: &AlgExpr, out: &mut Vec<(usize, usize)>) {
            match e {
                AlgExpr::Const(_) => {}
                AlgExpr::Var(i) => {
                    if let Some(entry) = out.iter_mut().find(|(v, _)| v == i) {
                        entry.1 += 1;
                    } else {
                        out.push((*i, 1));
                    }
                }
                AlgExpr::Neg(a) => collect(a, out),
                AlgExpr::Add(a, b)
                | AlgExpr::Sub(a, b)
                | AlgExpr::Mul(a, b)
                | AlgExpr::Div(a, b) => {
                    collect(a, out);
                    collect(b, out);
                }
            }
        }
        let mut out = Vec::new();
        collect(self, &mut out);
        out
    }

    /// The distinct variables mentioned, in increasing order.
    pub fn variables(&self) -> Vec<usize> {
        let mut vars: Vec<usize> = self.occurrences().into_iter().map(|(v, _)| v).collect();
        vars.sort_unstable();
        vars
    }

    /// The largest variable index mentioned, plus one (0 for constants).
    pub fn arity(&self) -> usize {
        self.variables().last().map_or(0, |v| v + 1)
    }

    /// True if every variable occurs at most once (the precondition of
    /// Theorem 5.5).
    pub fn is_single_occurrence(&self) -> bool {
        self.occurrences().iter().all(|&(_, c)| c <= 1)
    }

    /// Evaluates the expression at a point.
    pub fn eval(&self, point: &[f64]) -> Result<f64> {
        match self {
            AlgExpr::Const(c) => Ok(*c),
            AlgExpr::Var(i) => point
                .get(*i)
                .copied()
                .ok_or(ApproxError::VariableOutOfRange {
                    var: *i,
                    supplied: point.len(),
                }),
            AlgExpr::Neg(a) => Ok(-a.eval(point)?),
            AlgExpr::Add(a, b) => Ok(a.eval(point)? + b.eval(point)?),
            AlgExpr::Sub(a, b) => Ok(a.eval(point)? - b.eval(point)?),
            AlgExpr::Mul(a, b) => Ok(a.eval(point)? * b.eval(point)?),
            AlgExpr::Div(a, b) => {
                let d = b.eval(point)?;
                if d == 0.0 {
                    return Err(ApproxError::DivisionByZero);
                }
                Ok(a.eval(point)? / d)
            }
        }
    }

    /// Evaluates the expression over an orthotope by interval arithmetic
    /// (used for singularity detection; conservative for repeated variables).
    pub fn eval_interval(&self, orthotope: &Orthotope) -> Result<Interval> {
        match self {
            AlgExpr::Const(c) => Ok(Interval::point(*c)),
            AlgExpr::Var(i) => {
                orthotope
                    .intervals()
                    .get(*i)
                    .copied()
                    .ok_or(ApproxError::VariableOutOfRange {
                        var: *i,
                        supplied: orthotope.dimension(),
                    })
            }
            AlgExpr::Neg(a) => Ok(a.eval_interval(orthotope)?.neg()),
            AlgExpr::Add(a, b) => Ok(a
                .eval_interval(orthotope)?
                .add(&b.eval_interval(orthotope)?)),
            AlgExpr::Sub(a, b) => Ok(a
                .eval_interval(orthotope)?
                .sub(&b.eval_interval(orthotope)?)),
            AlgExpr::Mul(a, b) => Ok(a
                .eval_interval(orthotope)?
                .mul(&b.eval_interval(orthotope)?)),
            AlgExpr::Div(a, b) => a
                .eval_interval(orthotope)?
                .div(&b.eval_interval(orthotope)?),
        }
    }
}

impl fmt::Display for AlgExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgExpr::Const(c) => write!(f, "{c}"),
            AlgExpr::Var(i) => write!(f, "x{i}"),
            AlgExpr::Neg(a) => write!(f, "(-{a})"),
            AlgExpr::Add(a, b) => write!(f, "({a} + {b})"),
            AlgExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            AlgExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            AlgExpr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

impl std::ops::Add for AlgExpr {
    type Output = AlgExpr;
    fn add(self, rhs: AlgExpr) -> AlgExpr {
        AlgExpr::Add(Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Sub for AlgExpr {
    type Output = AlgExpr;
    fn sub(self, rhs: AlgExpr) -> AlgExpr {
        AlgExpr::Sub(Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Mul for AlgExpr {
    type Output = AlgExpr;
    fn mul(self, rhs: AlgExpr) -> AlgExpr {
        AlgExpr::Mul(Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Div for AlgExpr {
    type Output = AlgExpr;
    fn div(self, rhs: AlgExpr) -> AlgExpr {
        AlgExpr::Div(Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Neg for AlgExpr {
    type Output = AlgExpr;
    fn neg(self) -> AlgExpr {
        AlgExpr::Neg(Box::new(self))
    }
}

/// The algebraic predicate `f(x₁, …, x_k) ≥ 0` of Theorem 5.5.
#[derive(Clone, Debug, PartialEq)]
pub struct AlgebraicIneq {
    expr: AlgExpr,
}

/// Precision to which [`AlgebraicIneq::epsilon_homogeneous`] resolves ε.
pub const EPSILON_SEARCH_TOLERANCE: f64 = 1e-6;

/// Largest ε the binary search will report (must stay below 1 for the
/// relative orthotope to be defined).
pub const EPSILON_SEARCH_MAX: f64 = 0.999_999;

impl AlgebraicIneq {
    /// Creates the predicate `expr ≥ 0`, enforcing the single-occurrence
    /// requirement of Theorem 5.5.
    pub fn new(expr: AlgExpr) -> Result<Self> {
        if let Some(&(v, _)) = expr.occurrences().iter().find(|&&(_, c)| c > 1) {
            return Err(ApproxError::RepeatedVariable(v));
        }
        Ok(AlgebraicIneq { expr })
    }

    /// The underlying expression.
    pub fn expr(&self) -> &AlgExpr {
        &self.expr
    }

    /// Number of values the predicate is defined over.
    pub fn arity(&self) -> usize {
        self.expr.arity()
    }

    /// Evaluates the predicate at a point.
    pub fn eval(&self, point: &[f64]) -> Result<bool> {
        Ok(self.expr.eval(point)? >= 0.0)
    }

    /// Checks whether all corner points of the relative orthotope around
    /// `p_hat` with half-width ε agree with `p_hat` on the predicate
    /// (the sufficient condition of Theorem 5.5).  Corner evaluations that
    /// fail (division by zero when an interval endpoint hits a pole) count as
    /// disagreement.
    pub fn corners_agree(&self, p_hat: &[f64], epsilon: f64) -> Result<bool> {
        let reference = self.eval(p_hat)?;
        let orthotope = Orthotope::relative(p_hat, epsilon)?;
        for corner in orthotope.corners() {
            match self.eval(&corner) {
                Ok(v) if v == reference => {}
                Ok(_) => return Ok(false),
                Err(ApproxError::DivisionByZero) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Maximises ε by binary search in `(0, EPSILON_SEARCH_MAX]` such that
    /// all corners of the relative orthotope agree with `p_hat` on the
    /// predicate; by Theorem 5.5 the whole orthotope then agrees.
    ///
    /// Returns 0 if not even the smallest probed ε is homogeneous (the point
    /// is on or extremely near the decision boundary).
    pub fn epsilon_homogeneous(&self, p_hat: &[f64]) -> Result<f64> {
        // Validate the point itself first so errors are not silently mapped
        // to 0.
        self.eval(p_hat)?;
        if self.corners_agree(p_hat, EPSILON_SEARCH_MAX)? {
            return Ok(EPSILON_SEARCH_MAX);
        }
        let mut lo = 0.0f64;
        let mut hi = EPSILON_SEARCH_MAX;
        while hi - lo > EPSILON_SEARCH_TOLERANCE {
            let mid = 0.5 * (lo + hi);
            if self.corners_agree(p_hat, mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

impl fmt::Display for AlgebraicIneq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} >= 0", self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrence_checking() {
        let e = AlgExpr::var(0) / AlgExpr::var(1) - AlgExpr::konst(0.5);
        assert!(e.is_single_occurrence());
        assert_eq!(e.variables(), vec![0, 1]);
        assert_eq!(e.arity(), 2);
        assert!(AlgebraicIneq::new(e).is_ok());

        let repeated = AlgExpr::var(0) * AlgExpr::var(0);
        assert!(!repeated.is_single_occurrence());
        assert!(matches!(
            AlgebraicIneq::new(repeated),
            Err(ApproxError::RepeatedVariable(0))
        ));
    }

    #[test]
    fn evaluation_and_errors() {
        let e = (AlgExpr::var(0) + AlgExpr::konst(1.0)) * AlgExpr::var(1);
        assert_eq!(e.eval(&[2.0, 3.0]).unwrap(), 9.0);
        assert!(matches!(
            e.eval(&[2.0]),
            Err(ApproxError::VariableOutOfRange { var: 1, .. })
        ));
        let d = AlgExpr::var(0) / AlgExpr::konst(0.0);
        assert_eq!(d.eval(&[1.0]), Err(ApproxError::DivisionByZero));
        let n = -AlgExpr::var(0);
        assert_eq!(n.eval(&[2.5]).unwrap(), -2.5);
    }

    #[test]
    fn interval_evaluation() {
        let e = AlgExpr::var(0) / AlgExpr::var(1);
        let o = Orthotope::relative(&[0.5, 0.25], 0.2).unwrap();
        let iv = e.eval_interval(&o).unwrap();
        assert!(iv.lo > 1.0 && iv.hi < 3.1);
        // Division by an interval containing zero errors out.
        let o = Orthotope::absolute(&[0.5, 0.0], 0.5).unwrap();
        assert!(e.eval_interval(&o).is_err());
    }

    #[test]
    fn ratio_predicate_epsilon_matches_theorem_5_2() {
        // x0/x1 − 0.5 ≥ 0 at (1/2, 1/2): the algebraic search should find the
        // same ε = 1/3 as the closed form (the ratio is monotone in each
        // variable, and its extremes sit at orthotope corners).
        let phi =
            AlgebraicIneq::new(AlgExpr::var(0) / AlgExpr::var(1) - AlgExpr::konst(0.5)).unwrap();
        assert!(phi.eval(&[0.5, 0.5]).unwrap());
        let eps = phi.epsilon_homogeneous(&[0.5, 0.5]).unwrap();
        assert!(
            (eps - 1.0 / 3.0).abs() < 1e-4,
            "expected about 1/3, got {eps}"
        );
    }

    #[test]
    fn threshold_predicate_epsilon() {
        // x0 − 0.25 ≥ 0 at p̂ = 0.5: the orthotope [p̂/(1+ε), p̂/(1−ε)] stays
        // above 0.25 iff 0.5/(1+ε) ≥ 0.25 iff ε ≤ 1.
        let phi = AlgebraicIneq::new(AlgExpr::var(0) - AlgExpr::konst(0.25)).unwrap();
        let eps = phi.epsilon_homogeneous(&[0.5]).unwrap();
        assert!(eps > 0.99, "got {eps}");
        // On the false side: x0 = 0.2, the complement stays false while
        // 0.2/(1−ε) < 0.25 iff ε < 0.2.
        let eps = phi.epsilon_homogeneous(&[0.2]).unwrap();
        assert!((eps - 0.2).abs() < 1e-3, "got {eps}");
    }

    #[test]
    fn point_on_the_boundary_gets_epsilon_zero() {
        let phi = AlgebraicIneq::new(AlgExpr::var(0) - AlgExpr::konst(0.5)).unwrap();
        let eps = phi.epsilon_homogeneous(&[0.5]).unwrap();
        // p̂ exactly on the boundary: any ε > 0 puts part of the orthotope on
        // the other side, so the search collapses to (almost) zero.
        assert!(eps < 1e-3, "got {eps}");
    }

    #[test]
    fn corners_agree_is_monotone_in_epsilon() {
        let phi =
            AlgebraicIneq::new(AlgExpr::var(0) * AlgExpr::var(1) - AlgExpr::konst(0.04)).unwrap();
        let p = [0.3, 0.3];
        assert!(phi.eval(&p).unwrap());
        let eps = phi.epsilon_homogeneous(&p).unwrap();
        assert!(eps > 0.0);
        assert!(phi.corners_agree(&p, eps * 0.5).unwrap());
        if eps < EPSILON_SEARCH_MAX {
            assert!(!phi.corners_agree(&p, (eps + 0.05).min(0.999)).unwrap());
        }
    }

    #[test]
    fn trivially_constant_predicates_saturate() {
        let phi = AlgebraicIneq::new(AlgExpr::konst(1.0)).unwrap();
        assert_eq!(phi.arity(), 0);
        let eps = phi.epsilon_homogeneous(&[]).unwrap();
        assert_eq!(eps, EPSILON_SEARCH_MAX);
    }

    #[test]
    fn display_forms() {
        let phi =
            AlgebraicIneq::new(AlgExpr::var(0) / AlgExpr::var(1) - AlgExpr::konst(0.5)).unwrap();
        assert_eq!(phi.to_string(), "((x0 / x1) - 0.5) >= 0");
    }
}
