//! Error type for predicate approximation.

use std::fmt;

/// Errors raised by the `approx` crate.
#[derive(Clone, Debug, PartialEq)]
pub enum ApproxError {
    /// A variable index referenced by a predicate exceeds the number of
    /// approximated values supplied.
    VariableOutOfRange {
        /// The offending variable index.
        var: usize,
        /// Number of values supplied.
        supplied: usize,
    },
    /// Theorem 5.5 requires each variable to occur at most once in an
    /// algebraic atom.
    RepeatedVariable(usize),
    /// An approximation parameter is outside its legal range.
    InvalidParameter(String),
    /// Division by zero (or by an interval containing zero in a context that
    /// cannot tolerate it) during evaluation.
    DivisionByZero,
    /// A linear inequality has no usable coefficients (`α = 0` in
    /// Theorem 5.2, or an empty coefficient vector).
    DegenerateInequality(String),
    /// Error propagated from the estimator layer.
    Confidence(confidence::ConfidenceError),
    /// The Figure 3 loop was cut short by its caller's deadline before the
    /// stopping condition was met; no decision was produced.
    Interrupted,
    /// The algorithm was asked to decide a predicate with a mismatched number
    /// of estimators.
    ArityMismatch {
        /// Number of values the predicate mentions.
        expected: usize,
        /// Number of estimators supplied.
        actual: usize,
    },
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::VariableOutOfRange { var, supplied } => write!(
                f,
                "predicate refers to value x{var} but only {supplied} values were supplied"
            ),
            ApproxError::RepeatedVariable(v) => write!(
                f,
                "variable x{v} occurs more than once in an algebraic atom (Theorem 5.5 requires single occurrence)"
            ),
            ApproxError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            ApproxError::DivisionByZero => write!(f, "division by zero"),
            ApproxError::DegenerateInequality(m) => write!(f, "degenerate inequality: {m}"),
            ApproxError::Confidence(e) => write!(f, "{e}"),
            ApproxError::Interrupted => {
                write!(f, "predicate approximation interrupted by the caller's deadline")
            }
            ApproxError::ArityMismatch { expected, actual } => write!(
                f,
                "predicate mentions {expected} values but {actual} estimators were supplied"
            ),
        }
    }
}

impl std::error::Error for ApproxError {}

impl From<confidence::ConfidenceError> for ApproxError {
    fn from(e: confidence::ConfidenceError) -> Self {
        ApproxError::Confidence(e)
    }
}

/// Result alias for the `approx` crate.
pub type Result<T> = std::result::Result<T, ApproxError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(ApproxError::VariableOutOfRange {
            var: 3,
            supplied: 2
        }
        .to_string()
        .contains("x3"));
        assert!(ApproxError::RepeatedVariable(1).to_string().contains("x1"));
        let e: ApproxError = confidence::ConfidenceError::EmptyEvent.into();
        assert!(e.to_string().contains("no terms"));
    }
}
