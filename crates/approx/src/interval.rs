//! Closed intervals and relative-error orthotopes.
//!
//! Lemma 5.1 bounds the error of a predicate decision by requiring all points
//! of the axis-parallel orthotope
//! `( p̂₁/(1+ε), p̂₁/(1−ε) ) × … × ( p̂_k/(1+ε), p̂_k/(1−ε) )`
//! to agree on the predicate; Definition 5.6 uses the absolute box
//! `Π [p_i(1−ε₀), p_i(1+ε₀)]` to define singularities.  Both are built from
//! the closed [`Interval`] type here, which also provides the interval
//! arithmetic used for singularity detection.

use crate::error::{ApproxError, Result};
use std::fmt;

/// A closed, possibly degenerate interval `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval, normalising the endpoint order.
    pub fn new(a: f64, b: f64) -> Interval {
        if a <= b {
            Interval { lo: a, hi: b }
        } else {
            Interval { lo: b, hi: a }
        }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The *relative* interval `[p̂/(1+ε), p̂/(1−ε)]` of Lemma 5.1 around an
    /// approximated value (for `0 ≤ ε < 1` and `p̂ ≥ 0`).
    pub fn relative(p_hat: f64, epsilon: f64) -> Result<Interval> {
        if !(0.0..1.0).contains(&epsilon) {
            return Err(ApproxError::InvalidParameter(format!(
                "relative interval needs 0 <= epsilon < 1, got {epsilon}"
            )));
        }
        Ok(Interval::new(
            p_hat / (1.0 + epsilon),
            p_hat / (1.0 - epsilon),
        ))
    }

    /// The *absolute* box `[p·(1−ε₀), p·(1+ε₀)]` of Definition 5.6 around a
    /// true value.
    pub fn absolute(p: f64, epsilon0: f64) -> Result<Interval> {
        if epsilon0 < 0.0 {
            return Err(ApproxError::InvalidParameter(format!(
                "absolute interval needs epsilon0 >= 0, got {epsilon0}"
            )));
        }
        Ok(Interval::new(p * (1.0 - epsilon0), p * (1.0 + epsilon0)))
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// True if `v` lies in the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// True if the two intervals overlap.
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    // ---- interval arithmetic (used for singularity detection) ------------

    /// Interval addition.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Interval subtraction.
    pub fn sub(&self, other: &Interval) -> Interval {
        Interval::new(self.lo - other.hi, self.hi - other.lo)
    }

    /// Interval negation.
    pub fn neg(&self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }

    /// Interval multiplication.
    pub fn mul(&self, other: &Interval) -> Interval {
        let candidates = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        Interval {
            lo: candidates.iter().copied().fold(f64::INFINITY, f64::min),
            hi: candidates.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Interval division; an error if the divisor interval contains zero
    /// (callers treat that as "unknown sign", i.e. a potential singularity).
    pub fn div(&self, other: &Interval) -> Result<Interval> {
        if other.contains(0.0) {
            return Err(ApproxError::DivisionByZero);
        }
        let inv = Interval::new(1.0 / other.lo, 1.0 / other.hi);
        Ok(self.mul(&inv))
    }

    /// Interval scaling by a constant.
    pub fn scale(&self, c: f64) -> Interval {
        Interval::new(self.lo * c, self.hi * c)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// The axis-parallel orthotope of Lemma 5.1: one relative interval per
/// approximated value.
#[derive(Clone, Debug, PartialEq)]
pub struct Orthotope {
    intervals: Vec<Interval>,
}

impl Orthotope {
    /// Builds the relative orthotope around the point `p_hat` with relative
    /// half-width ε.
    pub fn relative(p_hat: &[f64], epsilon: f64) -> Result<Orthotope> {
        let intervals = p_hat
            .iter()
            .map(|&p| Interval::relative(p, epsilon))
            .collect::<Result<Vec<_>>>()?;
        Ok(Orthotope { intervals })
    }

    /// Builds the absolute box of Definition 5.6 around the point `p`.
    pub fn absolute(p: &[f64], epsilon0: f64) -> Result<Orthotope> {
        let intervals = p
            .iter()
            .map(|&v| Interval::absolute(v, epsilon0))
            .collect::<Result<Vec<_>>>()?;
        Ok(Orthotope { intervals })
    }

    /// Builds an orthotope from explicit per-dimension intervals (e.g. exact
    /// lower/upper confidence bounds rather than a symmetric neighbourhood).
    pub fn from_intervals(intervals: impl IntoIterator<Item = Interval>) -> Orthotope {
        Orthotope {
            intervals: intervals.into_iter().collect(),
        }
    }

    /// Dimension of the orthotope.
    pub fn dimension(&self) -> usize {
        self.intervals.len()
    }

    /// The per-dimension intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// True if the point lies inside the orthotope.
    pub fn contains(&self, point: &[f64]) -> bool {
        point.len() == self.intervals.len()
            && point
                .iter()
                .zip(&self.intervals)
                .all(|(&v, iv)| iv.contains(v))
    }

    /// Enumerates all `2^k` corner points, in a fixed order.  Corner `0` is
    /// the all-lower corner; bit `i` of the index selects the upper endpoint
    /// of dimension `i`.
    pub fn corners(&self) -> Vec<Vec<f64>> {
        let k = self.intervals.len();
        let mut out = Vec::with_capacity(1 << k);
        for mask in 0u64..(1u64 << k) {
            let corner: Vec<f64> = self
                .intervals
                .iter()
                .enumerate()
                .map(|(i, iv)| if mask & (1 << i) != 0 { iv.hi } else { iv.lo })
                .collect();
            out.push(corner);
        }
        out
    }

    /// The centre of the orthotope.
    pub fn center(&self) -> Vec<f64> {
        self.intervals.iter().map(Interval::midpoint).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_interval_matches_example_5_4() {
        // p̂ = 1/2, ε = 1/3 → [3/8, 3/4].
        let iv = Interval::relative(0.5, 1.0 / 3.0).unwrap();
        assert!((iv.lo - 0.375).abs() < 1e-12);
        assert!((iv.hi - 0.75).abs() < 1e-12);
        assert!(iv.contains(0.5));
        assert!(Interval::relative(0.5, 1.0).is_err());
        assert!(Interval::relative(0.5, -0.1).is_err());
    }

    #[test]
    fn absolute_interval_and_basic_ops() {
        let iv = Interval::absolute(2.0, 0.25).unwrap();
        assert_eq!(iv, Interval::new(1.5, 2.5));
        assert!(Interval::absolute(2.0, -0.1).is_err());
        assert_eq!(iv.width(), 1.0);
        assert_eq!(iv.midpoint(), 2.0);
        assert!(iv.intersects(&Interval::new(2.4, 3.0)));
        assert!(!iv.intersects(&Interval::new(2.6, 3.0)));
        // Normalised endpoint order.
        assert_eq!(Interval::new(3.0, 1.0), Interval::new(1.0, 3.0));
    }

    #[test]
    fn interval_arithmetic() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-1.0, 3.0);
        assert_eq!(a.add(&b), Interval::new(0.0, 5.0));
        assert_eq!(a.sub(&b), Interval::new(-2.0, 3.0));
        assert_eq!(a.neg(), Interval::new(-2.0, -1.0));
        assert_eq!(a.mul(&b), Interval::new(-2.0, 6.0));
        assert_eq!(a.scale(-2.0), Interval::new(-4.0, -2.0));
        assert!(a.div(&b).is_err()); // divisor contains 0
        let c = Interval::new(2.0, 4.0);
        assert_eq!(a.div(&c).unwrap(), Interval::new(0.25, 1.0));
        let d = Interval::new(-4.0, -2.0);
        assert_eq!(a.div(&d).unwrap(), Interval::new(-1.0, -0.25));
    }

    #[test]
    fn orthotope_corners_and_containment() {
        let o = Orthotope::relative(&[0.5, 0.5], 1.0 / 3.0).unwrap();
        assert_eq!(o.dimension(), 2);
        let corners = o.corners();
        assert_eq!(corners.len(), 4);
        let has_corner = |x: f64, y: f64| {
            corners
                .iter()
                .any(|c| (c[0] - x).abs() < 1e-12 && (c[1] - y).abs() < 1e-12)
        };
        assert!(has_corner(0.375, 0.375));
        assert!(has_corner(0.75, 0.75));
        assert!(has_corner(0.375, 0.75));
        assert!(o.contains(&[0.5, 0.6]));
        assert!(!o.contains(&[0.5, 0.8]));
        assert!(!o.contains(&[0.5]));
        let center = o.center();
        assert!((center[0] - (0.375 + 0.75) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn absolute_orthotope() {
        let o = Orthotope::absolute(&[1.0, 2.0], 0.1).unwrap();
        assert!(o.contains(&[0.95, 2.15]));
        assert!(!o.contains(&[0.85, 2.0]));
        assert_eq!(o.corners().len(), 4);
    }

    #[test]
    fn zero_dimensional_orthotope_has_one_corner() {
        let o = Orthotope::relative(&[], 0.5).unwrap();
        assert_eq!(o.dimension(), 0);
        assert_eq!(o.corners(), vec![Vec::<f64>::new()]);
        assert!(o.contains(&[]));
    }
}
