//! # Predicate approximation on approximable values (Section 5)
//!
//! The central difficulty addressed by Koch (PODS 2008): selection predicates
//! over *approximated* values (tuple confidences computed by Monte Carlo
//! estimation) may be decided wrongly, and for some inputs — singularities —
//! they cannot be approximated at all.  This crate implements the paper's
//! machinery for deciding such predicates with bounded error whenever the
//! input is not a singularity:
//!
//! * [`Interval`] / [`Orthotope`] — the relative-error orthotopes of
//!   Lemma 5.1 and the absolute boxes of Definition 5.6.
//! * [`LinearIneq`] — linear inequalities with the closed-form ε-maximisation
//!   of Theorem 5.2 (Example 5.4 / Figure 2 reproduce exactly).
//! * [`AlgebraicIneq`] — single-occurrence algebraic predicates with the
//!   corner-check + binary-search ε of Theorem 5.5.
//! * [`ApproxPredicate`] — Boolean combinations with the min/max
//!   ε-composition of Section 5.
//! * [`singularity`] — ε₀-singularity detection by three-valued interval
//!   evaluation.
//! * [`approximate_predicate`] — the iterative algorithm of Figure 3
//!   (Theorem 5.8), driven by incremental Karp–Luby estimators.
//! * [`naive_decide`] — the fixed-sample baseline the paper compares the
//!   algorithm against, plus the `(ε²_φ − ε²₀)/ε²_φ` saving estimate.
//!
//! ```
//! use approx::LinearIneq;
//!
//! // Example 5.4: φ(x1, x2) = (x1/x2 ≥ 1/2) at p̂ = (1/2, 1/2) gives ε = 1/3.
//! let phi = LinearIneq::ratio_at_least(2, 0, 1, 0.5);
//! let eps = phi.epsilon_max(&[0.5, 0.5]).unwrap();
//! assert!((eps - 1.0 / 3.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod algebraic;
mod algorithm;
mod error;
mod interval;
mod linear;
mod naive;
mod predicate;
pub mod singularity;

pub use algebraic::{AlgExpr, AlgebraicIneq, EPSILON_SEARCH_MAX, EPSILON_SEARCH_TOLERANCE};
pub use algorithm::{approximate_predicate, ApproximationParams, Decision};
pub use error::{ApproxError, Result};
pub use interval::{Interval, Orthotope};
pub use linear::LinearIneq;
pub use naive::{expected_saving_factor, naive_decide};
pub use predicate::{ApproxPredicate, Atom};
pub use singularity::{evaluate_over_box, is_possibly_singular, BoxVerdict};
