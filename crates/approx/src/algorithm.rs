//! The predicate-approximation algorithm of Figure 3 (Theorem 5.8).
//!
//! Given `k` approximable values (here: tuple confidences estimated by
//! incremental Karp–Luby estimators) and a predicate φ over them, the
//! algorithm repeatedly
//!
//! 1. draws one batch of `|F_i|` samples per estimator,
//! 2. evaluates φ at the current estimates `p̂`,
//! 3. computes `ε := max(ε₀, ε_ψ(p̂))` where `ψ` is φ if `φ(p̂)` holds and
//!    `¬φ` otherwise,
//!
//! and stops once `Σ_i δ_i(ε) ≤ δ`.  It outputs `φ(p̂)` together with the
//! error bound `min(0.5, Σ_i δ_i(ε))`.  Unless the true value vector is an
//! ε₀-singularity, the decision is correct with probability at least `1 − δ`
//! (Theorem 5.8).

use crate::error::{ApproxError, Result};
use crate::predicate::ApproxPredicate;
use confidence::IncrementalEstimator;
use rand::Rng;

/// Configuration of the Figure 3 algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApproximationParams {
    /// The smallest relative half-width ε₀ > 0 the algorithm is willing to
    /// refine to; values whose homogeneous ε falls below ε₀ are treated as
    /// boundary cases (possible singularities).
    pub epsilon0: f64,
    /// The target error probability δ.
    pub delta: f64,
    /// Hard cap on the number of outer-loop iterations, so that singular
    /// inputs terminate; `None` uses the iteration count that already drives
    /// `δ′(ε₀, l)` below `delta`, which is the most any non-singular input
    /// can need.
    pub max_iterations: Option<usize>,
    /// Cooperative deadline: the outer loop probes the clock once per
    /// iteration and aborts with [`ApproxError::Interrupted`] when it has
    /// passed.  `None` (the default) never interrupts.  Runs that complete
    /// are bit-identical to deadline-free runs — the probe draws no
    /// randomness.
    pub deadline: Option<std::time::Instant>,
}

impl ApproximationParams {
    /// Creates a parameter set, validating ranges.
    pub fn new(epsilon0: f64, delta: f64) -> Result<Self> {
        if !(epsilon0 > 0.0 && epsilon0 < 1.0) {
            return Err(ApproxError::InvalidParameter(format!(
                "epsilon0 = {epsilon0} must be in (0, 1)"
            )));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(ApproxError::InvalidParameter(format!(
                "delta = {delta} must be in (0, 1)"
            )));
        }
        Ok(ApproximationParams {
            epsilon0,
            delta,
            max_iterations: None,
            deadline: None,
        })
    }

    /// Sets an explicit iteration cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = Some(max_iterations);
        self
    }

    /// Sets the cooperative deadline (see [`Self::deadline`]).
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The number of outer-loop iterations after which `δ′(ε₀, l) · k ≤ δ`,
    /// i.e. the iteration count of the naive procedure; no non-singular input
    /// needs more.
    pub fn fallback_iterations(&self, k: usize) -> usize {
        let k = k.max(1) as f64;
        (3.0 * (2.0 * k / self.delta).ln() / (self.epsilon0 * self.epsilon0)).ceil() as usize
    }
}

/// The outcome of a predicate approximation.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// The decided truth value `φ(p̂₁, …, p̂_k)`.
    pub value: bool,
    /// The reported error bound `min(0.5, Σ_i δ_i(ε))`.
    pub error_bound: f64,
    /// The ε at which the loop stopped (`max(ε₀, ε_ψ(p̂))` of the last
    /// iteration).
    pub epsilon: f64,
    /// Number of outer-loop iterations executed.
    pub iterations: usize,
    /// Total number of Karp–Luby samples drawn across all estimators.
    pub samples: u64,
    /// The final estimates `p̂_i`.
    pub estimates: Vec<f64>,
    /// True if the loop stopped because the error target was met with
    /// `ε_ψ(p̂) ≥ ε₀`; false if it bottomed out at ε₀ (the estimates ended up
    /// too close to a decision boundary — the singularity-suspect case of
    /// Theorem 5.8's proof, case 2).
    pub converged_above_epsilon0: bool,
}

/// Runs the algorithm of Figure 3 on `estimators` (one per approximated
/// value) for the predicate `phi`.
///
/// The estimators carry any samples they already have; the algorithm adds
/// batches until the stopping condition is met.  The predicate's arity must
/// not exceed the number of estimators.
pub fn approximate_predicate<R: Rng + ?Sized>(
    phi: &ApproxPredicate,
    estimators: &mut [IncrementalEstimator],
    params: ApproximationParams,
    rng: &mut R,
) -> Result<Decision> {
    if phi.arity() > estimators.len() {
        return Err(ApproxError::ArityMismatch {
            expected: phi.arity(),
            actual: estimators.len(),
        });
    }
    let k = estimators.len().max(1);
    let max_iterations = params
        .max_iterations
        .unwrap_or_else(|| params.fallback_iterations(k));

    let mut iterations = 0usize;
    let (value, epsilon, error_bound, converged_above_epsilon0) = loop {
        if let Some(d) = params.deadline {
            if std::time::Instant::now() >= d {
                return Err(ApproxError::Interrupted);
            }
        }
        iterations += 1;
        for est in estimators.iter_mut() {
            est.add_batch(rng);
        }
        let estimates: Vec<f64> = estimators
            .iter()
            .map(IncrementalEstimator::estimate)
            .collect();

        let value = phi.eval(&estimates)?;
        // ε_ψ(p̂) for ψ = φ or ¬φ: the homogeneous ε of the predicate around
        // the current estimates (the composition rule already works on
        // whichever side the estimates lie).
        let eps_psi = phi.epsilon_homogeneous(&estimates)?;
        let converged_above_epsilon0 = eps_psi >= params.epsilon0;
        // The Karp–Luby/Chernoff bound needs ε < 1.
        let epsilon = eps_psi.max(params.epsilon0).min(0.999_999);

        let mut error_bound = 0.0;
        for est in estimators.iter() {
            error_bound += est.error_bound(epsilon)?;
        }

        if error_bound <= params.delta || iterations >= max_iterations {
            break (value, epsilon, error_bound, converged_above_epsilon0);
        }
    };

    let samples = estimators.iter().map(IncrementalEstimator::samples).sum();
    let estimates: Vec<f64> = estimators
        .iter()
        .map(IncrementalEstimator::estimate)
        .collect();
    Ok(Decision {
        value,
        error_bound: error_bound.min(0.5),
        epsilon,
        iterations,
        samples,
        estimates,
        converged_above_epsilon0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use confidence::{Assignment, DnfEvent, ProbabilitySpace};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// An estimator for a fresh tuple-independent event with `n` tuples of
    /// probability `q` each (true probability `1 − (1−q)^n`).
    fn estimator(n: usize, q: f64) -> (IncrementalEstimator, f64) {
        let mut space = ProbabilitySpace::new();
        let mut terms = Vec::new();
        for _ in 0..n {
            let v = space.add_bool_variable(q).unwrap();
            terms.push(Assignment::new([(v, 0)]).unwrap());
        }
        let event = DnfEvent::new(terms);
        let exact = 1.0 - (1.0 - q).powi(n as i32);
        (IncrementalEstimator::new(event, space).unwrap(), exact)
    }

    #[test]
    fn parameter_validation() {
        assert!(ApproximationParams::new(0.01, 0.05).is_ok());
        assert!(ApproximationParams::new(0.0, 0.05).is_err());
        assert!(ApproximationParams::new(0.01, 0.0).is_err());
        assert!(ApproximationParams::new(1.0, 0.5).is_err());
        assert!(ApproximationParams::new(0.5, 1.0).is_err());
        let p = ApproximationParams::new(0.1, 0.05)
            .unwrap()
            .with_max_iterations(7);
        assert_eq!(p.max_iterations, Some(7));
        assert!(p.fallback_iterations(2) > 0);
    }

    #[test]
    fn decides_a_clear_threshold_quickly_and_correctly() {
        // True probability ≈ 0.684 against threshold 0.3: a wide margin, so
        // the adaptive algorithm should stop long before the naive iteration
        // count and decide "true".
        let (mut est, exact) = estimator(6, 0.175);
        assert!(exact > 0.6 && exact < 0.75);
        let phi = ApproxPredicate::threshold(1, 0, 0.3);
        let params = ApproximationParams::new(0.05, 0.05).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let d =
            approximate_predicate(&phi, std::slice::from_mut(&mut est), params, &mut rng).unwrap();
        assert!(d.value);
        assert!(d.error_bound <= 0.05);
        assert!(d.converged_above_epsilon0);
        assert!(d.iterations < params.fallback_iterations(1));
        assert!((d.estimates[0] - exact).abs() < 0.1);
    }

    #[test]
    fn decides_on_the_false_side_too() {
        let (mut est, exact) = estimator(4, 0.05);
        assert!(exact < 0.2);
        let phi = ApproxPredicate::threshold(1, 0, 0.6);
        let params = ApproximationParams::new(0.05, 0.05).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let d =
            approximate_predicate(&phi, std::slice::from_mut(&mut est), params, &mut rng).unwrap();
        assert!(!d.value);
        assert!(d.error_bound <= 0.05);
        assert!(d.converged_above_epsilon0);
    }

    #[test]
    fn multi_value_ratio_predicate() {
        // P1/P2 ≤ 0.5 (Example 6.1) with P1 ≈ 0.19, P2 ≈ 0.6: the ratio is
        // well below 0.5, so the predicate (written as 0.5·x1 − x0 ≥ 0)
        // should be decided "true".
        let (mut e1, exact1) = estimator(2, 0.1);
        let (mut e2, exact2) = estimator(5, 0.17);
        assert!(exact1 / exact2 < 0.4);
        let phi = ApproxPredicate::linear(crate::linear::LinearIneq::new(vec![-1.0, 0.5], 0.0));
        let params = ApproximationParams::new(0.05, 0.05).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut ests = [e1.clone(), e2.clone()];
        let d = approximate_predicate(&phi, &mut ests, params, &mut rng).unwrap();
        assert!(d.value);
        assert!(d.error_bound <= 0.05);
        // The two estimators share the work.
        assert!(d.samples > 0);
        // Keep clippy quiet about the unused originals.
        let _ = (&mut e1, &mut e2);
    }

    #[test]
    fn near_singular_inputs_bottom_out_at_epsilon0() {
        // True probability exactly at the threshold: the algorithm cannot
        // separate the estimate from the boundary, so it runs to the
        // iteration cap and reports that it never converged above ε₀.
        let (mut est, exact) = estimator(1, 0.5);
        assert!((exact - 0.5).abs() < 1e-12);
        let phi = ApproxPredicate::threshold(1, 0, 0.5);
        let params = ApproximationParams::new(0.1, 0.05)
            .unwrap()
            .with_max_iterations(200);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let d =
            approximate_predicate(&phi, std::slice::from_mut(&mut est), params, &mut rng).unwrap();
        assert_eq!(d.iterations, 200);
        assert!(!d.converged_above_epsilon0);
        // The error bound is still reported (capped at 0.5).
        assert!(d.error_bound <= 0.5);
    }

    #[test]
    fn trivial_estimators_and_constant_predicates() {
        let space = ProbabilitySpace::new();
        let mut est = IncrementalEstimator::new(DnfEvent::never(), space).unwrap();
        let phi = ApproxPredicate::threshold(1, 0, 0.5);
        let params = ApproximationParams::new(0.05, 0.05).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d =
            approximate_predicate(&phi, std::slice::from_mut(&mut est), params, &mut rng).unwrap();
        // conf = 0 ≥ 0.5 is false, and exact, so one iteration suffices.
        assert!(!d.value);
        assert_eq!(d.iterations, 1);
        assert_eq!(d.error_bound, 0.0);
    }

    #[test]
    fn expired_deadline_interrupts_before_sampling() {
        let (mut est, _) = estimator(4, 0.3);
        let phi = ApproxPredicate::threshold(1, 0, 0.5);
        let params = ApproximationParams::new(0.05, 0.05)
            .unwrap()
            .with_deadline(Some(
                std::time::Instant::now() - std::time::Duration::from_millis(1),
            ));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let err = approximate_predicate(&phi, std::slice::from_mut(&mut est), params, &mut rng);
        assert_eq!(err, Err(ApproxError::Interrupted));
    }

    #[test]
    fn arity_mismatch_is_detected() {
        let phi = ApproxPredicate::threshold(2, 1, 0.5);
        let params = ApproximationParams::new(0.05, 0.05).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let err = approximate_predicate(&phi, &mut [], params, &mut rng);
        assert!(matches!(err, Err(ApproxError::ArityMismatch { .. })));
    }

    #[test]
    fn error_probability_is_empirically_bounded() {
        // Repeat the decision many times with different seeds; the fraction
        // of wrong decisions must stay below δ (with slack for sampling
        // noise of the meta-experiment).
        let phi = ApproxPredicate::threshold(1, 0, 0.4);
        let params = ApproximationParams::new(0.05, 0.1).unwrap();
        let mut wrong = 0;
        let runs = 40;
        for seed in 0..runs {
            let (mut est, exact) = estimator(5, 0.13); // ≈ 0.502
            let truth = exact >= 0.4;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let d = approximate_predicate(&phi, std::slice::from_mut(&mut est), params, &mut rng)
                .unwrap();
            if d.value != truth {
                wrong += 1;
            }
        }
        assert!(wrong <= 4, "{wrong} wrong decisions out of {runs}");
    }
}
