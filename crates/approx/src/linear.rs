//! Linear inequalities over approximated values and the closed-form
//! ε-maximisation of Theorem 5.2.

use crate::error::{ApproxError, Result};
use crate::interval::{Interval, Orthotope};
use std::fmt;

/// A linear inequality `Σ_i a_i·x_i ≥ b` over approximated values
/// `x_0, …, x_{k−1}`.
///
/// Coefficients are positional: `coeffs[i]` multiplies the i-th approximated
/// value.  A zero coefficient means the value does not participate.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearIneq {
    /// The coefficients `a_i`.
    pub coeffs: Vec<f64>,
    /// The right-hand side `b`.
    pub bound: f64,
}

impl LinearIneq {
    /// Creates the inequality `Σ a_i·x_i ≥ b`.
    pub fn new(coeffs: Vec<f64>, bound: f64) -> Self {
        LinearIneq { coeffs, bound }
    }

    /// The inequality `x_i ≥ c` (a threshold on a single value).
    pub fn threshold(num_values: usize, var: usize, c: f64) -> Self {
        let mut coeffs = vec![0.0; num_values];
        coeffs[var] = 1.0;
        LinearIneq::new(coeffs, c)
    }

    /// The inequality `x_i / x_j ≥ c`, rewritten as `x_i − c·x_j ≥ 0` (the
    /// rewriting used in Example 5.4; valid for positive `x_j`, which holds
    /// for confidence values).
    pub fn ratio_at_least(num_values: usize, numerator: usize, denominator: usize, c: f64) -> Self {
        let mut coeffs = vec![0.0; num_values];
        coeffs[numerator] = 1.0;
        coeffs[denominator] -= c;
        LinearIneq::new(coeffs, 0.0)
    }

    /// Number of values the inequality is defined over.
    pub fn arity(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the inequality at a point.
    pub fn eval(&self, point: &[f64]) -> Result<bool> {
        Ok(self.lhs(point)? >= self.bound)
    }

    /// The left-hand side `Σ a_i·x_i` at a point.
    pub fn lhs(&self, point: &[f64]) -> Result<f64> {
        if point.len() < self.coeffs.len() {
            return Err(ApproxError::VariableOutOfRange {
                var: self.coeffs.len() - 1,
                supplied: point.len(),
            });
        }
        Ok(self.coeffs.iter().zip(point).map(|(a, x)| a * x).sum())
    }

    /// The complementary inequality, describing (up to the measure-zero
    /// boundary) the points where this one is false: `Σ (−a_i)·x_i ≥ −b`.
    pub fn complement(&self) -> LinearIneq {
        LinearIneq {
            coeffs: self.coeffs.iter().map(|a| -a).collect(),
            bound: -self.bound,
        }
    }

    /// The range of the left-hand side over an orthotope, by interval
    /// arithmetic (exact for linear forms).
    pub fn lhs_range(&self, orthotope: &Orthotope) -> Result<Interval> {
        if orthotope.dimension() < self.coeffs.len() {
            return Err(ApproxError::VariableOutOfRange {
                var: self.coeffs.len() - 1,
                supplied: orthotope.dimension(),
            });
        }
        let mut acc = Interval::point(0.0);
        for (a, iv) in self.coeffs.iter().zip(orthotope.intervals()) {
            acc = acc.add(&iv.scale(*a));
        }
        Ok(acc)
    }

    /// Theorem 5.2: the ε that maximises the relative orthotope around
    /// `p_hat` (which must satisfy the inequality) while keeping the whole
    /// orthotope on the satisfying side.
    ///
    /// The candidate ε is the root of the quadratic
    /// `b·ε² − β·ε + (α − b) = 0` with `α = Σ a_i·p̂_i`, `β = Σ |a_i·p̂_i|`
    /// (the paper's derivation multiplies the touching condition by
    /// `(1−ε)(1+ε)`, which introduces a spurious root at `ε = 1` whenever
    /// `α = β`; we therefore keep only roots of the *original* touching
    /// condition rather than always taking the larger quadratic root).
    /// [`f64::INFINITY`] is returned when the orthotope never reaches the
    /// hyperplane for any ε (callers clamp below 1 anyway); values ≥ 1 are
    /// possible as noted in Remark 5.3.
    pub fn epsilon_max(&self, p_hat: &[f64]) -> Result<f64> {
        if !self.eval(p_hat)? {
            return Err(ApproxError::DegenerateInequality(
                "epsilon_max requires a point satisfying the inequality".into(),
            ));
        }
        let alpha: f64 = self.coeffs.iter().zip(p_hat).map(|(a, x)| a * x).sum();
        let beta: f64 = self
            .coeffs
            .iter()
            .zip(p_hat)
            .map(|(a, x)| (a * x).abs())
            .sum();
        let b = self.bound;

        if beta == 0.0 {
            // Every coefficient·value product is zero: the inequality reduces
            // to `0 ≥ b`, which the point satisfies; it then holds everywhere.
            return Ok(f64::INFINITY);
        }

        // Candidate roots of the quadratic (a single linear root for b = 0).
        let mut candidates: Vec<f64> = Vec::with_capacity(2);
        if b == 0.0 {
            candidates.push(alpha / beta);
        } else {
            // The paper shows the discriminant is ≥ 0 whenever β ≥ α ≥ b;
            // numerical noise can push it slightly negative, so clamp.
            let disc = (beta * beta - 4.0 * b * (alpha - b)).max(0.0);
            let sqrt_disc = disc.sqrt();
            candidates.push((beta + sqrt_disc) / (2.0 * b));
            candidates.push((beta - sqrt_disc) / (2.0 * b));
        }

        // Keep only genuine roots: non-negative and not the spurious ε = 1
        // introduced by the (1−ε²) factor.  The touching condition
        // g(ε) = Σ a_i·p̂_i / (1 + sgn(a_i·p̂_i)·ε) − b is strictly decreasing
        // on [0, 1), so the smallest remaining candidate is the first point
        // at which the orthotope touches the hyperplane.
        let eps = candidates
            .into_iter()
            .filter(|&r| r >= 0.0 && (r - 1.0).abs() > 1e-12)
            .fold(f64::INFINITY, f64::min);
        Ok(eps)
    }

    /// The homogeneous ε for a point on *either* side of the hyperplane: the
    /// inequality's own ε if the point satisfies it, the complement's ε
    /// otherwise.  This is the atom-level quantity used when composing
    /// Boolean predicates (Section 5).
    pub fn epsilon_homogeneous(&self, p_hat: &[f64]) -> Result<f64> {
        if self.eval(p_hat)? {
            self.epsilon_max(p_hat)
        } else {
            self.complement().epsilon_max(p_hat)
        }
    }
}

impl fmt::Display for LinearIneq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, a) in self.coeffs.iter().enumerate() {
            if *a == 0.0 {
                continue;
            }
            if first {
                write!(f, "{a}·x{i}")?;
                first = false;
            } else if *a >= 0.0 {
                write!(f, " + {a}·x{i}")?;
            } else {
                write!(f, " - {}·x{i}", -a)?;
            }
        }
        if first {
            write!(f, "0")?;
        }
        write!(f, " >= {}", self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_5_4_epsilon_is_one_third() {
        // φ(x1, x2) = (x1/x2 ≥ 1/2) rewritten as x1 − 0.5·x2 ≥ 0, at
        // p̂ = (1/2, 1/2):  ε = α/β = 0.25 / 0.75 = 1/3.
        let phi = LinearIneq::ratio_at_least(2, 0, 1, 0.5);
        assert_eq!(phi.coeffs, vec![1.0, -0.5]);
        assert_eq!(phi.bound, 0.0);
        let p_hat = [0.5, 0.5];
        assert!(phi.eval(&p_hat).unwrap());
        let eps = phi.epsilon_max(&p_hat).unwrap();
        assert!((eps - 1.0 / 3.0).abs() < 1e-12);

        // The maximal orthotope is [3/8, 3/4]² and it touches the hyperplane
        // 2x1 = x2 at (3/8, 3/4).
        let orthotope = Orthotope::relative(&p_hat, eps).unwrap();
        let corners = orthotope.corners();
        assert!(corners
            .iter()
            .any(|c| (c[0] - 0.375).abs() < 1e-12 && (c[1] - 0.75).abs() < 1e-12));
        // Every corner still satisfies φ (the touching corner is on the
        // boundary, which satisfies the non-strict inequality).
        for corner in &corners {
            assert!(phi.eval(corner).unwrap(), "corner {corner:?} violates φ");
        }
    }

    #[test]
    fn orthotope_with_epsilon_max_is_homogeneous() {
        // For a selection of non-zero-b inequalities, the orthotope computed
        // from ε_max stays on the satisfying side (checked at the corners,
        // which suffices for linear predicates).
        let cases = [
            (LinearIneq::new(vec![1.0, 1.0], 0.6), vec![0.5, 0.3]),
            (LinearIneq::new(vec![2.0, -1.0], 0.2), vec![0.4, 0.1]),
            (LinearIneq::new(vec![1.0], 0.25), vec![0.9]),
            (LinearIneq::new(vec![-1.0, 3.0], -0.5), vec![0.3, 0.05]),
            (
                LinearIneq::new(vec![0.5, 0.5, 0.5], 0.3),
                vec![0.3, 0.3, 0.3],
            ),
        ];
        for (phi, p_hat) in cases {
            assert!(phi.eval(&p_hat).unwrap(), "{phi} at {p_hat:?}");
            let eps = phi.epsilon_max(&p_hat).unwrap();
            assert!(eps >= 0.0);
            let eps_clamped = eps.min(0.999_999);
            let orthotope = Orthotope::relative(&p_hat, eps_clamped).unwrap();
            for corner in orthotope.corners() {
                let lhs = phi.lhs(&corner).unwrap();
                assert!(
                    lhs >= phi.bound - 1e-9,
                    "{phi}: corner {corner:?} of eps={eps} has lhs {lhs}"
                );
            }
        }
    }

    #[test]
    fn epsilon_is_zero_on_the_hyperplane() {
        // Remark 5.3: a point on the hyperplane yields ε = 0.
        let phi = LinearIneq::new(vec![1.0, 1.0], 1.0);
        let eps = phi.epsilon_max(&[0.5, 0.5]).unwrap();
        assert!(eps.abs() < 1e-12);
        // The same holds for a hyperplane through the origin (b = 0, α = 0).
        let psi = LinearIneq::new(vec![1.0, -1.0], 0.0);
        assert!(psi.epsilon_max(&[0.5, 0.5]).unwrap().abs() < 1e-12);
    }

    #[test]
    fn epsilon_can_exceed_one() {
        // Remark 5.3: values ε ≥ 1 are possible; e.g. a threshold far from
        // the point.
        let phi = LinearIneq::threshold(1, 0, 0.2);
        let eps = phi.epsilon_max(&[0.5]).unwrap();
        assert!((eps - 1.5).abs() < 1e-12, "expected 1.5, got {eps}");
        // A negative threshold can never be reached by shrinking a positive
        // value, so the orthotope never touches the hyperplane.
        let phi = LinearIneq::threshold(1, 0, -10.0);
        assert_eq!(phi.epsilon_max(&[0.5]).unwrap(), f64::INFINITY);
        // A trivially true inequality with no active coefficients is
        // homogeneous everywhere.
        let always = LinearIneq::new(vec![0.0], -1.0);
        assert_eq!(always.epsilon_max(&[0.3]).unwrap(), f64::INFINITY);
    }

    #[test]
    fn spurious_root_at_one_is_not_reported() {
        // x0 ≥ 0.45 at p̂ = 0.5: the quadratic roots are {1/9, 1}; the
        // correct ε is 1/9 (the orthotope's lower corner 0.5/(1+ε) touches
        // 0.45), not the spurious 1 that the (1−ε²) factor introduces.
        let phi = LinearIneq::threshold(1, 0, 0.45);
        let eps = phi.epsilon_max(&[0.5]).unwrap();
        assert!((eps - 1.0 / 9.0).abs() < 1e-12, "expected 1/9, got {eps}");
    }

    #[test]
    fn requires_a_satisfying_point() {
        let phi = LinearIneq::threshold(1, 0, 0.9);
        assert!(phi.epsilon_max(&[0.5]).is_err());
        // The homogeneous variant switches to the complement instead.
        let eps = phi.epsilon_homogeneous(&[0.5]).unwrap();
        assert!(eps > 0.0);
        // Complement: −x0 ≥ −0.9, satisfied by 0.5.
        assert!(phi.complement().eval(&[0.5]).unwrap());
    }

    #[test]
    fn homogeneous_epsilon_keeps_the_false_side_false() {
        let phi = LinearIneq::threshold(2, 0, 0.9);
        let p_hat = [0.5, 0.2];
        assert!(!phi.eval(&p_hat).unwrap());
        let eps = phi.epsilon_homogeneous(&p_hat).unwrap().min(0.999);
        let orthotope = Orthotope::relative(&p_hat, eps).unwrap();
        for corner in orthotope.corners() {
            assert!(!phi.eval(&corner).unwrap() || phi.lhs(&corner).unwrap() <= phi.bound + 1e-9);
        }
    }

    #[test]
    fn lhs_range_by_interval_arithmetic() {
        let phi = LinearIneq::new(vec![1.0, -2.0], 0.0);
        let o = Orthotope::relative(&[0.5, 0.25], 0.2).unwrap();
        let r = phi.lhs_range(&o).unwrap();
        // x0 ∈ [0.4167, 0.625], −2·x1 ∈ [−0.625, −0.4167]
        assert!(r.lo < 0.0 && r.hi > 0.0);
        assert!(phi
            .lhs_range(&Orthotope::relative(&[0.5], 0.2).unwrap())
            .is_err());
    }

    #[test]
    fn eval_arity_errors() {
        let phi = LinearIneq::new(vec![1.0, 1.0], 0.0);
        assert!(phi.eval(&[0.5]).is_err());
        assert!(phi.lhs(&[]).is_err());
        assert_eq!(phi.arity(), 2);
    }

    #[test]
    fn display() {
        let phi = LinearIneq::new(vec![1.0, -0.5, 0.0], 0.25);
        assert_eq!(phi.to_string(), "1·x0 - 0.5·x1 >= 0.25");
        assert_eq!(LinearIneq::new(vec![0.0], 1.0).to_string(), "0 >= 1");
    }
}
