//! Property tests for the Section 5 approximation machinery: the composed
//! ε of Boolean predicates is always homogeneous, singularity detection is
//! consistent with sampling, and the saving-factor formula behaves.

use approx::{
    expected_saving_factor, is_possibly_singular, ApproxPredicate, LinearIneq, Orthotope,
};
use proptest::prelude::*;

/// A random threshold atom over two values.
fn arb_atom() -> impl Strategy<Value = ApproxPredicate> {
    (0usize..2, 5u32..95).prop_map(|(var, c)| {
        ApproxPredicate::linear(LinearIneq::threshold(2, var, c as f64 / 100.0))
    })
}

/// A random Boolean combination of up to three threshold atoms.
fn arb_predicate() -> impl Strategy<Value = ApproxPredicate> {
    (arb_atom(), arb_atom(), arb_atom(), 0usize..6).prop_map(|(a, b, c, shape)| match shape {
        0 => a,
        1 => a.and(b),
        2 => a.or(b),
        3 => a.and(b).or(c),
        4 => a.or(b).and(c).not(),
        _ => a.not().and(b.or(c)),
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// The composed homogeneous ε really is homogeneous: all corners of the
    /// orthotope agree with the centre on the predicate (corners are the
    /// extremes for these monotone atoms).
    #[test]
    fn composed_epsilon_is_homogeneous(
        pred in arb_predicate(),
        x in 5u32..95,
        y in 5u32..95,
    ) {
        let p_hat = [x as f64 / 100.0, y as f64 / 100.0];
        let reference = pred.eval(&p_hat).unwrap();
        let eps = pred.epsilon_homogeneous(&p_hat).unwrap();
        prop_assume!(eps > 1e-6);
        let eps = (eps * 0.999).min(0.999);
        let orthotope = Orthotope::relative(&p_hat, eps).unwrap();
        prop_assert!(
            pred.corners_agree(&orthotope, reference).unwrap(),
            "{pred} not constant on the eps = {eps} orthotope around {p_hat:?}"
        );
    }

    /// Homogeneity is preserved under negation, and the ε of a predicate and
    /// its negation coincide.
    #[test]
    fn negation_preserves_epsilon(pred in arb_predicate(), x in 5u32..95, y in 5u32..95) {
        let p_hat = [x as f64 / 100.0, y as f64 / 100.0];
        let e1 = pred.epsilon_homogeneous(&p_hat).unwrap();
        let e2 = pred.clone().not().epsilon_homogeneous(&p_hat).unwrap();
        prop_assert!((e1 - e2).abs() < 1e-12 || (e1.is_infinite() && e2.is_infinite()));
    }

    /// If the true point is not flagged as possibly singular at ε₀, then no
    /// point of the absolute ε₀-box disagrees with it (checked by grid
    /// sampling) — i.e. the interval-arithmetic verdict is sound.
    #[test]
    fn non_singular_points_are_really_homogeneous(
        pred in arb_predicate(),
        x in 5u32..95,
        y in 5u32..95,
        eps0 in 1u32..30,
    ) {
        let p = [x as f64 / 100.0, y as f64 / 100.0];
        let eps0 = eps0 as f64 / 100.0;
        prop_assume!(!is_possibly_singular(&pred, &p, eps0).unwrap());
        let reference = pred.eval(&p).unwrap();
        let boxed = Orthotope::absolute(&p, eps0).unwrap();
        let grid = 6;
        for i in 0..=grid {
            for j in 0..=grid {
                let q = [
                    boxed.intervals()[0].lo + boxed.intervals()[0].width() * i as f64 / grid as f64,
                    boxed.intervals()[1].lo + boxed.intervals()[1].width() * j as f64 / grid as f64,
                ];
                prop_assert_eq!(pred.eval(&q).unwrap(), reference,
                    "{} flips at {:?} inside a box declared non-singular", pred, q);
            }
        }
    }

    /// The predicted saving factor is monotone: it grows with ε_φ and shrinks
    /// with ε₀, and always lies in [0, 1).
    #[test]
    fn saving_factor_shape(eps_phi in 1u32..100, eps0 in 1u32..100) {
        let eps_phi = eps_phi as f64 / 100.0;
        let eps0 = eps0 as f64 / 100.0;
        let f = expected_saving_factor(eps_phi, eps0);
        prop_assert!((0.0..1.0).contains(&f));
        if eps_phi > eps0 {
            prop_assert!(f > 0.0);
            prop_assert!(expected_saving_factor(eps_phi + 0.01, eps0) >= f - 1e-12);
            prop_assert!(expected_saving_factor(eps_phi, eps0 + 0.01) <= f + 1e-12);
        } else {
            prop_assert_eq!(f, 0.0);
        }
    }
}
