//! The coin-bag scenario of Example 2.2 (and its generalisations).

use algebra::{parse_query, Query};
use pdb::{relation, schema, ProbabilisticDatabase, Relation, Tuple, Value};
use urel::UDatabase;

/// The complete relations of Example 2.2: two fair coins, one double-headed
/// coin, and the face probabilities.
pub fn coin_relations() -> Vec<(String, Relation)> {
    coin_relations_with(2, 1, 2)
}

/// A generalised coin bag: `num_fair` fair coins, `num_double` double-headed
/// coins, and `num_tosses` tosses of the chosen coin.
pub fn coin_relations_with(
    num_fair: i64,
    num_double: i64,
    num_tosses: i64,
) -> Vec<(String, Relation)> {
    let coins = relation![schema!["CoinType", "Count"];
        ["fair", num_fair], ["2headed", num_double]];
    let faces = relation![schema!["CoinType", "Face", "FProb"];
        ["fair", "H", 0.5], ["fair", "T", 0.5], ["2headed", "H", 1.0]];
    let mut tosses = Relation::empty(schema!["Toss"]);
    for i in 1..=num_tosses {
        tosses
            .insert(Tuple::new(vec![Value::Int(i)]))
            .expect("toss arity");
    }
    vec![
        ("Coins".to_string(), coins),
        ("Faces".to_string(), faces),
        ("Tosses".to_string(), tosses),
    ]
}

/// The Example 2.2 database in the possible-worlds representation.
pub fn coin_database() -> ProbabilisticDatabase {
    ProbabilisticDatabase::from_complete_relations(coin_relations())
        .expect("the coin database is well-formed")
}

/// The Example 2.2 database in the U-relational representation.
pub fn coin_udatabase() -> UDatabase {
    UDatabase::from_complete_relations(coin_relations())
}

/// A generalised coin database in the U-relational representation.
pub fn coin_udatabase_with(num_fair: i64, num_double: i64, num_tosses: i64) -> UDatabase {
    UDatabase::from_complete_relations(coin_relations_with(num_fair, num_double, num_tosses))
}

/// `R := π_CoinType(repair-key_∅@Count(Coins))`: the chosen coin.
pub fn query_r() -> Query {
    parse_query("project[CoinType](repairkey[ @ Count](Coins))").expect("query R parses")
}

/// `S := π_{CoinType,Toss,Face}(repair-key_{CoinType,Toss@FProb}(Faces × Tosses))`:
/// the outcomes of tossing every coin type `num_tosses` times.
pub fn query_s() -> Query {
    parse_query(
        "project[CoinType, Toss, Face](repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)))",
    )
    .expect("query S parses")
}

/// The textual form of `S`, used to build larger queries by substitution.
fn s_text() -> &'static str {
    "project[CoinType, Toss, Face](repairkey[CoinType, Toss @ FProb](product(Faces, Tosses)))"
}

/// `T`: the chosen coin's type in the worlds where the observed tosses all
/// came up heads (the evidence of Example 2.2 with `num_evidence_tosses`
/// heads observed).
pub fn query_t(num_evidence_tosses: i64) -> Query {
    let r = "project[CoinType](repairkey[ @ Count](Coins))";
    let mut t = r.to_string();
    for i in 1..=num_evidence_tosses {
        t = format!(
            "join({t}, project[CoinType](select[Toss = {i} and Face = 'H']({})))",
            s_text()
        );
    }
    parse_query(&t).expect("query T parses")
}

/// `U`: the posterior probability of each coin type given the evidence — the
/// conditional-probability table of Example 2.2.
pub fn query_u(num_evidence_tosses: i64) -> Query {
    let t = query_t(num_evidence_tosses).to_string();
    let u = format!(
        "project[CoinType, P1 / P2 as P](join(rename[P -> P1](conf({t})), rename[P -> P2](conf(project[]({t})))))"
    );
    parse_query(&u).expect("query U parses")
}

/// The approximate-selection form of Example 6.1:
/// `σ̂_{conf[CoinType]/conf[∅] ≤ bound}(T)`.
pub fn query_posterior_filter(num_evidence_tosses: i64, bound: f64) -> Query {
    let t = query_t(num_evidence_tosses).to_string();
    let q = format!(
        "aselect[P1 = conf(CoinType), P2 = conf(); P1 / P2 <= {bound}; eps0 = 0.02; delta = 0.05]({t})"
    );
    parse_query(&q).expect("posterior filter parses")
}

/// The paper's expected posterior for Example 2.2 (two tosses, both heads):
/// `(coin type, posterior)` pairs.
pub fn expected_posterior_two_heads() -> Vec<(&'static str, f64)> {
    vec![("fair", 1.0 / 3.0), ("2headed", 2.0 / 3.0)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::{output_schema, Catalog};
    use pdb::schema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, rel) in coin_relations() {
            c.add(name, rel.schema().clone(), true);
        }
        c
    }

    #[test]
    fn relations_match_the_paper() {
        let rels = coin_relations();
        assert_eq!(rels.len(), 3);
        assert_eq!(rels[0].1.len(), 2);
        assert_eq!(rels[1].1.len(), 3);
        assert_eq!(rels[2].1.len(), 2);
        let big = coin_relations_with(5, 3, 4);
        assert_eq!(big[2].1.len(), 4);
    }

    #[test]
    fn queries_parse_and_typecheck() {
        let cat = catalog();
        assert_eq!(
            output_schema(&query_r(), &cat).unwrap(),
            schema!["CoinType"]
        );
        assert_eq!(
            output_schema(&query_s(), &cat).unwrap(),
            schema!["CoinType", "Toss", "Face"]
        );
        assert_eq!(
            output_schema(&query_t(2), &cat).unwrap(),
            schema!["CoinType"]
        );
        assert_eq!(
            output_schema(&query_u(2), &cat).unwrap(),
            schema!["CoinType", "P"]
        );
        assert_eq!(
            output_schema(&query_posterior_filter(2, 0.5), &cat).unwrap(),
            schema!["CoinType"]
        );
    }

    #[test]
    fn databases_are_consistent() {
        let db = coin_database();
        db.validate().unwrap();
        let udb = coin_udatabase();
        udb.validate().unwrap();
        assert_eq!(udb.relation_names().len(), 3);
        assert_eq!(expected_posterior_two_heads().len(), 2);
    }
}
