//! Random tuple-independent databases and random DNF events, the synthetic
//! inputs for the confidence-computation and scaling experiments.

use confidence::{Assignment, DnfEvent, ProbabilitySpace};
use pdb::{Relation, Schema, Tuple, Value};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use urel::{Condition, UDatabase, URelation, Var};

/// Parameters of the tuple-independent database generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TupleIndependentDb {
    /// Number of tuples in the uncertain relation.
    pub num_tuples: usize,
    /// Number of distinct values per non-key attribute.
    pub domain_size: usize,
    /// Marginal probability of each tuple (if `None`, drawn uniformly from
    /// `(0.05, 0.95)`).
    pub tuple_probability: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TupleIndependentDb {
    fn default() -> Self {
        TupleIndependentDb {
            num_tuples: 20,
            domain_size: 5,
            tuple_probability: None,
            seed: 1,
        }
    }
}

impl TupleIndependentDb {
    /// Generates a U-relational database with one uncertain relation
    /// `T(Id, A, B)` under the tuple-independence model: each tuple is
    /// present iff its own Boolean variable is true.
    pub fn database(&self) -> UDatabase {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut db = UDatabase::new();
        let schema = Schema::new(["Id", "A", "B"]).expect("tuple-independent schema");
        let mut rel = URelation::empty(schema);
        for i in 0..self.num_tuples {
            let p = self
                .tuple_probability
                .unwrap_or_else(|| rng.gen_range(0.05..0.95));
            let var = Var::new(format!("t{i}"));
            db.wtable_mut()
                .add_bool_variable(var.clone(), p)
                .expect("valid tuple probability");
            let cond = Condition::new([(var, Value::Bool(true))]).expect("fresh variable");
            let tuple = Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..self.domain_size) as i64),
                Value::Int(rng.gen_range(0..self.domain_size) as i64),
            ]);
            rel.insert(cond, tuple).expect("tuple arity");
        }
        db.set_relation("T", rel, false);
        db
    }

    /// The same data as a complete relation plus per-tuple probabilities,
    /// used when a possible-worlds (nonsuccinct) copy is needed.
    pub fn complete_with_probabilities(&self) -> (Relation, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let schema = Schema::new(["Id", "A", "B"]).expect("tuple-independent schema");
        let mut rel = Relation::empty(schema);
        let mut probs = Vec::with_capacity(self.num_tuples);
        for i in 0..self.num_tuples {
            let p = self
                .tuple_probability
                .unwrap_or_else(|| rng.gen_range(0.05..0.95));
            probs.push(p);
            rel.insert(Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..self.domain_size) as i64),
                Value::Int(rng.gen_range(0..self.domain_size) as i64),
            ]))
            .expect("tuple arity");
        }
        (rel, probs)
    }
}

/// Parameters of the random DNF event generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandomDnf {
    /// Number of Boolean variables.
    pub num_variables: usize,
    /// Number of terms `|F|`.
    pub num_terms: usize,
    /// Number of literals per term.
    pub literals_per_term: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDnf {
    fn default() -> Self {
        RandomDnf {
            num_variables: 16,
            num_terms: 8,
            literals_per_term: 3,
            seed: 2,
        }
    }
}

impl RandomDnf {
    /// Generates the probability space and the DNF event.
    pub fn generate(&self) -> (DnfEvent, ProbabilitySpace) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut space = ProbabilitySpace::new();
        for _ in 0..self.num_variables {
            space
                .add_bool_variable(rng.gen_range(0.05..0.95))
                .expect("valid probability");
        }
        let mut terms = Vec::with_capacity(self.num_terms);
        for _ in 0..self.num_terms {
            let mut pairs = Vec::with_capacity(self.literals_per_term);
            for _ in 0..self.literals_per_term {
                let var = rng.gen_range(0..self.num_variables);
                let alt = usize::from(rng.gen_bool(0.5));
                // Duplicate variables within a term keep their first polarity.
                if !pairs.iter().any(|&(v, _)| v == var) {
                    pairs.push((var, alt));
                }
            }
            terms.push(Assignment::new(pairs).expect("no conflicting literals"));
        }
        (DnfEvent::new(terms), space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confidence::exact;

    #[test]
    fn tuple_independent_database_is_valid_and_deterministic() {
        let gen = TupleIndependentDb::default();
        let db = gen.database();
        db.validate().unwrap();
        assert_eq!(db.wtable().num_variables(), gen.num_tuples);
        assert_eq!(db.relation("T").unwrap().len(), gen.num_tuples);
        let again = gen.database();
        assert_eq!(db.relation("T").unwrap(), again.relation("T").unwrap());
        let (rel, probs) = gen.complete_with_probabilities();
        assert_eq!(rel.len(), gen.num_tuples);
        assert_eq!(probs.len(), gen.num_tuples);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn fixed_probability_is_honoured() {
        let gen = TupleIndependentDb {
            tuple_probability: Some(0.25),
            num_tuples: 5,
            ..TupleIndependentDb::default()
        };
        let db = gen.database();
        for var in db.wtable().variables() {
            let p = db.wtable().probability(&var, &Value::Bool(true)).unwrap();
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn random_dnf_is_well_formed() {
        let gen = RandomDnf::default();
        let (event, space) = gen.generate();
        assert_eq!(event.num_terms(), gen.num_terms);
        assert_eq!(space.num_variables(), gen.num_variables);
        let p = exact::probability(&event, &space).unwrap();
        assert!((0.0..=1.0).contains(&p));
        // Deterministic under the seed.
        let (event2, _) = gen.generate();
        assert_eq!(event, event2);
        // Different seeds give different events.
        let other = RandomDnf {
            seed: 99,
            ..RandomDnf::default()
        };
        assert_ne!(event, other.generate().0);
    }
}
