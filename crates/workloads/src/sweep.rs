//! Parameter sweeps: small helpers the benchmark harness uses to iterate
//! experiment grids deterministically.

/// One point of a parameter grid.
#[derive(Clone, Debug, PartialEq)]
pub struct GridPoint {
    /// Name/value pairs of the swept parameters, in declaration order.
    pub values: Vec<(String, f64)>,
}

impl GridPoint {
    /// Looks up a parameter by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A compact `name=value` rendering for labels.
    pub fn label(&self) -> String {
        self.values
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A cartesian parameter grid.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParameterGrid {
    axes: Vec<(String, Vec<f64>)>,
}

impl ParameterGrid {
    /// Creates an empty grid (a single point with no parameters).
    pub fn new() -> Self {
        ParameterGrid::default()
    }

    /// Adds an axis with the given values.
    pub fn axis(mut self, name: impl Into<String>, values: impl IntoIterator<Item = f64>) -> Self {
        self.axes.push((name.into(), values.into_iter().collect()));
        self
    }

    /// Number of points in the grid.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len().max(1)).product()
    }

    /// True if the grid has no axes.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Enumerates all grid points in row-major order (last axis varies
    /// fastest).
    pub fn points(&self) -> Vec<GridPoint> {
        let mut out = vec![GridPoint { values: Vec::new() }];
        for (name, values) in &self.axes {
            let mut next = Vec::with_capacity(out.len() * values.len().max(1));
            for point in &out {
                for v in values {
                    let mut values = point.values.clone();
                    values.push((name.clone(), *v));
                    next.push(GridPoint { values });
                }
            }
            out = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumeration_is_row_major() {
        let grid = ParameterGrid::new()
            .axis("n", [1.0, 2.0])
            .axis("eps", [0.1, 0.2, 0.3]);
        assert_eq!(grid.len(), 6);
        assert!(!grid.is_empty());
        let points = grid.points();
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].get("n"), Some(1.0));
        assert_eq!(points[0].get("eps"), Some(0.1));
        assert_eq!(points[1].get("eps"), Some(0.2));
        assert_eq!(points[5].get("n"), Some(2.0));
        assert_eq!(points[5].get("eps"), Some(0.3));
        assert_eq!(points[0].get("missing"), None);
        assert_eq!(points[0].label(), "n=1,eps=0.1");
    }

    #[test]
    fn empty_grid_is_a_single_point() {
        let grid = ParameterGrid::new();
        assert!(grid.is_empty());
        assert_eq!(grid.points().len(), 1);
        assert!(grid.points()[0].values.is_empty());
    }
}
