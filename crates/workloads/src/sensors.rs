//! Sensor-fusion workloads: uncertain readings per sensor, the kind of use
//! case the paper's introduction motivates for probabilistic databases.

use algebra::{ConfTerm, Expr, Predicate, Query};
use pdb::{Relation, Schema, Tuple, Value};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use urel::UDatabase;

/// Parameters of the sensor workload generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensorWorkload {
    /// Number of sensors.
    pub num_sensors: usize,
    /// Number of candidate readings per sensor (repair-key keeps one).
    pub readings_per_sensor: usize,
    /// Probability that a candidate reading is "high" (above the alarm
    /// threshold).
    pub high_probability: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for SensorWorkload {
    fn default() -> Self {
        SensorWorkload {
            num_sensors: 10,
            readings_per_sensor: 4,
            high_probability: 0.4,
            seed: 7,
        }
    }
}

/// Alarm threshold separating "high" from "normal" readings (degrees).
pub const HIGH_TEMPERATURE: f64 = 30.0;

impl SensorWorkload {
    /// Generates the complete `Readings(Sensor, Temp, Weight)` relation.
    pub fn readings(&self) -> Relation {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let schema = Schema::new(["Sensor", "Temp", "Weight"]).expect("sensor schema");
        let mut rel = Relation::empty(schema);
        for sensor in 0..self.num_sensors {
            for reading in 0..self.readings_per_sensor {
                let high = rng.gen_bool(self.high_probability);
                let base = if high { 30.0 } else { 15.0 };
                // Distinct temperatures per (sensor, reading) keep set
                // semantics from collapsing candidates.
                let temp = base + reading as f64 + sensor as f64 * 0.01;
                let weight = rng.gen_range(1.0..10.0_f64);
                rel.insert(Tuple::new(vec![
                    Value::Int(sensor as i64),
                    Value::float(temp),
                    Value::float((weight * 100.0).round() / 100.0),
                ]))
                .expect("reading arity");
            }
        }
        rel
    }

    /// The U-relational database holding the readings.
    pub fn database(&self) -> UDatabase {
        UDatabase::from_complete_relations([("Readings", self.readings())])
    }

    /// The cleaned readings: `repair-key_{Sensor@Weight}(Readings)` keeps one
    /// candidate reading per sensor, weighted by plausibility.
    pub fn cleaned_query() -> Query {
        Query::table("Readings").repair_key(&["Sensor"], "Weight")
    }

    /// The alarm query: sensors whose probability of a high reading is at
    /// least `threshold`, as an approximate selection
    /// `σ̂_{conf[Sensor] ≥ threshold}(σ_{Temp ≥ 30}(repair-key(Readings)))`.
    pub fn alarm_query(threshold: f64, epsilon0: f64, delta: f64) -> Query {
        Self::cleaned_query()
            .select(Predicate::ge(
                Expr::attr("Temp"),
                Expr::konst(HIGH_TEMPERATURE),
            ))
            .approx_select(
                vec![ConfTerm::new("P1", ["Sensor"])],
                Predicate::ge(Expr::attr("P1"), Expr::konst(threshold)),
                epsilon0,
                delta,
            )
    }

    /// The exact probability that a given sensor's repaired reading is high,
    /// computed directly from the weights (used as ground truth in tests and
    /// experiments).
    pub fn exact_high_probability(&self, sensor: usize) -> f64 {
        let readings = self.readings();
        let mut high = 0.0;
        let mut total = 0.0;
        for t in readings.iter() {
            if t[0] != Value::Int(sensor as i64) {
                continue;
            }
            let temp = t[1].as_f64().expect("numeric temperature");
            let weight = t[2].as_f64().expect("numeric weight");
            total += weight;
            if temp >= HIGH_TEMPERATURE {
                high += weight;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            high / total
        }
    }

    /// Sensors whose exact high-probability clears `threshold` — the expected
    /// result of [`SensorWorkload::alarm_query`].
    pub fn expected_alarms(&self, threshold: f64) -> Vec<usize> {
        (0..self.num_sensors)
            .filter(|&s| self.exact_high_probability(s) >= threshold)
            .collect()
    }

    /// The smallest relative distance of any sensor's high-probability to the
    /// threshold — a measure of how close the workload is to a singularity.
    pub fn smallest_margin(&self, threshold: f64) -> f64 {
        (0..self.num_sensors)
            .map(|s| {
                let p = self.exact_high_probability(s);
                if p == 0.0 {
                    1.0
                } else {
                    (p - threshold).abs() / p
                }
            })
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::{output_schema, Catalog};

    #[test]
    fn generator_is_deterministic_and_well_formed() {
        let w = SensorWorkload::default();
        let a = w.readings();
        let b = w.readings();
        assert_eq!(a, b);
        assert_eq!(a.len(), w.num_sensors * w.readings_per_sensor);
        w.database().validate().unwrap();
        let other = SensorWorkload {
            seed: 8,
            ..SensorWorkload::default()
        };
        assert_ne!(a, other.readings());
    }

    #[test]
    fn queries_typecheck() {
        let w = SensorWorkload::default();
        let mut catalog = Catalog::new();
        catalog.add("Readings", w.readings().schema().clone(), true);
        let q = SensorWorkload::alarm_query(0.5, 0.05, 0.05);
        let schema = output_schema(&q, &catalog).unwrap();
        assert_eq!(schema.attrs(), &["Sensor".to_string()]);
    }

    #[test]
    fn exact_probabilities_are_probabilities() {
        let w = SensorWorkload::default();
        for s in 0..w.num_sensors {
            let p = w.exact_high_probability(s);
            assert!((0.0..=1.0).contains(&p), "sensor {s} has p = {p}");
        }
        let alarms = w.expected_alarms(0.0);
        assert_eq!(alarms.len(), w.num_sensors);
        let none = w.expected_alarms(1.1);
        assert!(none.is_empty());
        assert!(w.smallest_margin(0.5) >= 0.0);
    }
}
