//! Data-cleaning / deduplication workloads: dirty records with alternative
//! interpretations, cleaned by `repair-key` and filtered by confidence
//! thresholds — the other headline use case of the paper's introduction.
//! Also provides the conditional-probability-under-constraint query shape of
//! Theorem 4.4 (`Pr[φ ∧ ψ] = Pr[φ] − Pr[φ ∧ ¬ψ]` for an egd ψ).

use algebra::{parse_query, ConfTerm, Expr, Predicate, Query};
use pdb::{Relation, Schema, Tuple, Value};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use urel::UDatabase;

/// Parameters of the cleaning workload generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CleaningWorkload {
    /// Number of dirty source records.
    pub num_records: usize,
    /// Number of alternative interpretations per record.
    pub alternatives_per_record: usize,
    /// Number of distinct cities interpretations draw from.
    pub num_cities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CleaningWorkload {
    fn default() -> Self {
        CleaningWorkload {
            num_records: 8,
            alternatives_per_record: 3,
            num_cities: 4,
            seed: 3,
        }
    }
}

impl CleaningWorkload {
    /// The dirty relation `Dirty(RecId, Name, City, Weight)`: each record has
    /// several weighted candidate interpretations.
    pub fn dirty(&self) -> Relation {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let schema = Schema::new(["RecId", "Name", "City", "Weight"]).expect("cleaning schema");
        let mut rel = Relation::empty(schema);
        // Names repeat across records (two records per name) so that the
        // "one city per name" dependency of the Theorem 4.4 example is not
        // trivially satisfied.
        let names = (self.num_records / 2).max(1);
        for rec in 0..self.num_records {
            for alt in 0..self.alternatives_per_record {
                let city = rng.gen_range(0..self.num_cities);
                let weight = rng.gen_range(1.0..10.0_f64);
                rel.insert(Tuple::new(vec![
                    Value::Int(rec as i64),
                    Value::str(format!("name{}", rec % names)),
                    Value::str(format!("city{city}")),
                    Value::float((weight * 100.0).round() / 100.0 + alt as f64 * 1e-4),
                ]))
                .expect("cleaning arity");
            }
        }
        rel
    }

    /// The U-relational database holding the dirty relation.
    pub fn database(&self) -> UDatabase {
        UDatabase::from_complete_relations([("Dirty", self.dirty())])
    }

    /// The cleaned relation: one interpretation per record, chosen by
    /// `repair-key_{RecId@Weight}`.
    pub fn cleaned_query() -> Query {
        Query::table("Dirty").repair_key(&["RecId"], "Weight")
    }

    /// The "confident residents" query: cities whose probability of housing
    /// at least one cleaned record is at least `threshold`
    /// (`σ̂_{conf[City] ≥ threshold}(π_{City}(clean))` as an approximate
    /// selection).
    pub fn confident_city_query(threshold: f64, epsilon0: f64, delta: f64) -> Query {
        Self::cleaned_query().project(&["City"]).approx_select(
            vec![ConfTerm::new("P1", ["City"])],
            Predicate::ge(Expr::attr("P1"), Expr::konst(threshold)),
            epsilon0,
            delta,
        )
    }

    /// The Boolean query φ of the Theorem 4.4 example: "some cleaned record
    /// lives in `city`", as `conf(π_∅(σ_{City = city}(clean)))`.
    pub fn egd_phi_query(city_index: usize) -> Query {
        let clean = Self::cleaned_query().to_string();
        let city = format!("city{city_index}");
        let q = format!("rename[P -> Pphi](conf(project[](select[City = '{city}']({clean}))))");
        parse_query(&q).expect("egd phi query parses")
    }

    /// The query computing `Pr[φ ∧ ¬ψ]` where ψ is the egd "no two cleaned
    /// records of the same name live in different cities" (¬ψ is
    /// existential, so this stays in positive UA\[conf\]); Theorem 4.4 then
    /// gives `Pr[φ ∧ ψ] = Pr[φ] − Pr[φ ∧ ¬ψ]`.
    pub fn egd_violation_query(city_index: usize) -> Query {
        let clean = Self::cleaned_query().to_string();
        let city = format!("city{city_index}");
        let phi = format!("project[](select[City = '{city}']({clean}))");
        let violation = format!(
            "project[](select[Name = Name2 and City != City2](product({clean}, \
             rename[RecId -> RecId2](rename[Name -> Name2](rename[City -> City2](rename[Weight -> Weight2]({clean})))))))"
        );
        let q = format!("rename[P -> Pviol](conf(join({phi}, {violation})))");
        parse_query(&q).expect("egd violation query parses")
    }

    /// Theorem 4.4, packaged: a query whose single result row carries both
    /// `Pphi = Pr[φ]` and `Pviol = Pr[φ ∧ ¬ψ]`.  Note that when `Pr[φ ∧ ¬ψ]`
    /// is zero the violation side has no possible tuple and the product is
    /// empty; callers that need to distinguish "zero" from "no row" should
    /// use [`CleaningWorkload::egd_phi_query`] and
    /// [`CleaningWorkload::egd_violation_query`] separately.
    pub fn egd_conditional_query(city_index: usize) -> Query {
        let phi = Self::egd_phi_query(city_index).to_string();
        let violation = Self::egd_violation_query(city_index).to_string();
        parse_query(&format!("product({phi}, {violation})")).expect("egd conditional query parses")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::{output_schema, Catalog};

    fn catalog(w: &CleaningWorkload) -> Catalog {
        let mut c = Catalog::new();
        c.add("Dirty", w.dirty().schema().clone(), true);
        c
    }

    #[test]
    fn generator_shape_and_determinism() {
        let w = CleaningWorkload::default();
        let d = w.dirty();
        assert_eq!(d.len(), w.num_records * w.alternatives_per_record);
        assert_eq!(d, w.dirty());
        w.database().validate().unwrap();
    }

    #[test]
    fn queries_typecheck() {
        let w = CleaningWorkload::default();
        let cat = catalog(&w);
        let q = CleaningWorkload::confident_city_query(0.5, 0.05, 0.05);
        assert_eq!(
            output_schema(&q, &cat).unwrap().attrs(),
            &["City".to_string()]
        );
        let q = CleaningWorkload::egd_conditional_query(0);
        let schema = output_schema(&q, &cat).unwrap();
        assert!(schema.contains("Pphi"));
        assert!(schema.contains("Pviol"));
    }

    #[test]
    fn cleaned_query_is_positive_ua() {
        let q = CleaningWorkload::confident_city_query(0.5, 0.05, 0.05);
        assert!(algebra::is_positive(&q));
        assert!(algebra::repair_key_below_approx_select(&q));
    }
}
