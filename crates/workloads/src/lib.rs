//! # Synthetic workloads for the PODS'08 reproduction
//!
//! The paper has no datasets: its scenarios are the coin-bag example
//! (Example 2.2) and the use cases named in its introduction (sensor data
//! management, data cleaning).  This crate provides deterministic, seeded
//! generators for all of them plus random tuple-independent databases and
//! random DNF events for the confidence-computation experiments:
//!
//! * [`coins`] — Example 2.2 and generalisations, with the queries R, S, T, U
//!   and the σ̂ form of Example 6.1.
//! * [`sensors`] — sensor fusion: uncertain readings, alarm queries with
//!   confidence thresholds.
//! * [`cleaning`] — deduplication with `repair-key`, confidence-filtered
//!   results, and the egd-conditional query shape of Theorem 4.4.
//! * [`random_db`] — random tuple-independent databases and random DNF
//!   events.
//! * [`sweep`] — parameter grids used by the benchmark harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cleaning;
pub mod coins;
pub mod random_db;
pub mod sensors;
pub mod sweep;

pub use cleaning::CleaningWorkload;
pub use coins::{coin_database, coin_udatabase, coin_udatabase_with};
pub use random_db::{RandomDnf, TupleIndependentDb};
pub use sensors::SensorWorkload;
pub use sweep::{GridPoint, ParameterGrid};
