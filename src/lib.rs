//! Umbrella crate re-exporting the public API of the PODS'08 reproduction.
//!
//! See the individual crates for the paper-section-by-section implementation:
//! [`pdb`] (possible worlds, §2), [`urel`] (U-relations, §3), [`algebra`]
//! (the UA query language, §2/§6), [`confidence`] (exact and Karp–Luby
//! confidence computation, §3–4), [`approx`] (predicate approximation, §5),
//! [`engine`] (query evaluation and error propagation, §3/§6) and
//! [`workloads`] (synthetic scenario generators).
pub use algebra;
pub use approx;
pub use confidence;
pub use engine;
pub use pdb;
pub use urel;
pub use workloads;

/// The README, compiled as doctests: every ```rust block in it (the
/// quickstart and the serving walkthrough) must build and run against the
/// current API.
#[doc = include_str!("../README.md")]
#[allow(dead_code)]
struct ReadmeDoctests;
